"""Look-ahead rank bounds for LP-CTA (Section 6).

Given a cell ``c`` (implicitly represented by its bounding halfspaces) the
focal record's rank anywhere inside ``c`` can be bracketed without inserting
any further hyperplanes:

* ``Rank_lower(c) = 1 + #{r : min_c S(r) > max_c S(p)}`` — records that beat
  the focal record *everywhere* in ``c``;
* ``Rank_upper(c) = 1 + #{r : max_c S(r) > min_c S(p)}`` — records that beat
  it *somewhere* in ``c``.

If ``Rank_lower > k`` the cell can be pruned; if ``Rank_upper <= k`` it can be
reported immediately.  Three refinements are implemented, selectable through
:class:`BoundsMode` to reproduce the Figure 18 ablation:

* ``RECORD`` — per-record score intervals, each requiring two LP solves
  (Section 6.1);
* ``GROUP`` — the aggregate R-tree is traversed and whole subtrees are
  resolved through the score intervals of their MBR corners (Section 6.2);
* ``FAST`` — additionally, the cheap ``O(d)`` *fast bounds* built from the
  cell's min-/max-vectors filter entries before any tight LP bound is computed
  (Section 6.3).  This is the full LP-CTA configuration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..geometry.halfspace import Halfspace
from ..geometry.linprog import LPCounters, maximize_linear, minimize_linear
from ..index.rtree import AggregateRTree, RTreeNode
from ..robust import Tolerance, resolve_tolerance
from .cell import CellView

__all__ = [
    "BoundsMode",
    "RankBounds",
    "score_objective",
    "cell_score_interval",
    "fast_vectors",
    "TransformedBoundEvaluator",
    "OriginalSpaceBoundEvaluator",
]


class BoundsMode(enum.Enum):
    """Which bound machinery LP-CTA uses (Figure 18 ablation)."""

    RECORD = "record"
    GROUP = "group"
    FAST = "fast"


@dataclass(frozen=True)
class RankBounds:
    """Lower and upper bound on the focal record's rank within a cell."""

    lower: int
    upper: int

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ValueError("rank lower bound exceeds upper bound")


def score_objective(point: np.ndarray) -> tuple[np.ndarray, float]:
    """Linear form of ``S(point)`` over the transformed preference space.

    With ``w_d = 1 - sum_{i<d} w_i`` the score becomes
    ``point_d + sum_{i<d} (point_i - point_d) w_i``; the returned pair is
    ``(coefficients, constant)``.
    """
    point = np.asarray(point, dtype=float)
    return point[:-1] - point[-1], float(point[-1])


def cell_score_interval(
    point: np.ndarray,
    halfspaces: tuple[Halfspace, ...],
    dimensionality: int,
    counters: LPCounters | None = None,
) -> tuple[float, float]:
    """Tight ``[min, max]`` score of a d-dimensional point over a cell (two LPs)."""
    coefficients, constant = score_objective(point)
    low = minimize_linear(coefficients, halfspaces, dimensionality, counters).value + constant
    high = maximize_linear(coefficients, halfspaces, dimensionality, counters).value + constant
    return low, high


def fast_vectors(
    halfspaces: tuple[Halfspace, ...],
    dimensionality: int,
    counters: LPCounters | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The cell's min-vector ``w^L`` and max-vector ``w^U`` in the original space.

    Each component of ``w^L`` (resp. ``w^U``) is the minimum (maximum) value
    that weight can take inside the cell; the last component is derived from
    the extrema of ``sum_i w_i`` (Section 6.3).  ``2 d`` LP solves in total.
    """
    low = np.empty(dimensionality + 1)
    high = np.empty(dimensionality + 1)
    for axis in range(dimensionality):
        objective = np.zeros(dimensionality)
        objective[axis] = 1.0
        low[axis] = minimize_linear(objective, halfspaces, dimensionality, counters).value
        high[axis] = maximize_linear(objective, halfspaces, dimensionality, counters).value
    ones = np.ones(dimensionality)
    sum_low = minimize_linear(ones, halfspaces, dimensionality, counters).value
    sum_high = maximize_linear(ones, halfspaces, dimensionality, counters).value
    low[dimensionality] = max(0.0, 1.0 - sum_high)
    high[dimensionality] = max(0.0, 1.0 - sum_low)
    return low, high


class TransformedBoundEvaluator:
    """Rank-bound computation over the transformed preference space (LP-CTA)."""

    def __init__(
        self,
        tree: AggregateRTree,
        focal: np.ndarray,
        dimensionality: int,
        counters: LPCounters | None = None,
        mode: BoundsMode = BoundsMode.FAST,
        tolerance: Tolerance | float | None = None,
    ) -> None:
        self.tree = tree
        self.focal = np.asarray(focal, dtype=float)
        #: Dimensionality d' of the transformed space.
        self.dimensionality = dimensionality
        self.counters = counters
        self.mode = mode
        self.tolerance = resolve_tolerance(tolerance)
        # Fast bounds are only valid for non-negative data (score terms must be
        # monotone in the weights); fall back to group bounds otherwise.
        values = tree.dataset.values
        self._fast_applicable = bool(
            (values.size == 0 or float(values.min()) >= 0.0) and float(self.focal.min()) >= 0.0
        )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def evaluate(self, cell: CellView, k: int) -> RankBounds:
        """Compute rank bounds for ``cell``, stopping early once ``lower > k``."""
        halfspaces = cell.bounding_halfspaces
        focal_low, focal_high = cell_score_interval(
            self.focal, halfspaces, self.dimensionality, self.counters
        )
        use_fast = self.mode is BoundsMode.FAST and self._fast_applicable
        vector_low: np.ndarray | None = None
        vector_high: np.ndarray | None = None
        if use_fast:
            vector_low, vector_high = fast_vectors(halfspaces, self.dimensionality, self.counters)

        state = _TraversalState(lower=1, upper=1)
        if self.tree.dataset.cardinality:
            self._visit_node(
                self.tree.visit(self.tree.root),
                halfspaces,
                focal_low,
                focal_high,
                vector_low,
                vector_high,
                state,
                k,
            )
        return RankBounds(state.lower, min(state.upper, self.tree.dataset.cardinality + 1))

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def _visit_node(
        self,
        node: RTreeNode,
        halfspaces: tuple[Halfspace, ...],
        focal_low: float,
        focal_high: float,
        vector_low: np.ndarray | None,
        vector_high: np.ndarray | None,
        state: "_TraversalState",
        k: int,
    ) -> None:
        if state.lower > k:
            return
        if node.is_leaf:
            for position in node.record_positions:
                if state.lower > k:
                    return
                values = self.tree.dataset.values[int(position)]
                self._classify_record(
                    values, halfspaces, focal_low, focal_high, vector_low, vector_high, state
                )
            return
        for child in node.children:
            if state.lower > k:
                return
            decided = False
            if self.mode is not BoundsMode.RECORD:
                decided = self._classify_group(
                    child, halfspaces, focal_low, focal_high, vector_low, vector_high, state
                )
            if not decided:
                self._visit_node(
                    self.tree.visit(child),
                    halfspaces,
                    focal_low,
                    focal_high,
                    vector_low,
                    vector_high,
                    state,
                    k,
                )

    def _classify_group(
        self,
        node: RTreeNode,
        halfspaces: tuple[Halfspace, ...],
        focal_low: float,
        focal_high: float,
        vector_low: np.ndarray | None,
        vector_high: np.ndarray | None,
        state: "_TraversalState",
    ) -> bool:
        """Try to resolve a whole subtree from its MBR corners; True if resolved."""
        count = node.count
        if vector_low is not None and vector_high is not None:
            fast_low = float(np.dot(node.mbr.low, vector_low))
            fast_high = float(np.dot(node.mbr.high, vector_high))
            if self._apply_interval(fast_low, fast_high, count, focal_low, focal_high, state):
                return True
        low_coefficients, low_constant = score_objective(node.mbr.low)
        group_low = (
            minimize_linear(low_coefficients, halfspaces, self.dimensionality, self.counters).value
            + low_constant
        )
        high_coefficients, high_constant = score_objective(node.mbr.high)
        group_high = (
            maximize_linear(high_coefficients, halfspaces, self.dimensionality, self.counters).value
            + high_constant
        )
        return self._apply_interval(group_low, group_high, count, focal_low, focal_high, state)

    def _classify_record(
        self,
        values: np.ndarray,
        halfspaces: tuple[Halfspace, ...],
        focal_low: float,
        focal_high: float,
        vector_low: np.ndarray | None,
        vector_high: np.ndarray | None,
        state: "_TraversalState",
    ) -> None:
        if vector_low is not None and vector_high is not None:
            fast_low = float(np.dot(values, vector_low))
            fast_high = float(np.dot(values, vector_high))
            if self._apply_interval(fast_low, fast_high, 1, focal_low, focal_high, state):
                return
        record_low, record_high = cell_score_interval(
            values, halfspaces, self.dimensionality, self.counters
        )
        if self._apply_interval(record_low, record_high, 1, focal_low, focal_high, state):
            return
        # Inconclusive even with tight bounds: the record beats the focal
        # record in part of the cell only.
        state.upper += 1

    def _apply_interval(
        self,
        low: float,
        high: float,
        count: int,
        focal_low: float,
        focal_high: float,
        state: "_TraversalState",
    ) -> bool:
        """Apply the three conclusive checks of Algorithm 3; True if conclusive.

        Conclusive decisions require clearing the tolerance margin in the safe
        direction: a near-tie never prunes (``lower`` only grows on a strict
        win) and never skips a contribution to ``upper`` (a near-tie record is
        still counted as a potential beat), so numerical noise can only make
        the bounds looser, never wrong.
        """
        margin = self.tolerance.margin(
            max(abs(low), abs(high), abs(focal_low), abs(focal_high), 1.0)
        )
        if high < focal_low - margin:
            return True  # never beats the focal record: contributes nothing
        if low > focal_high + margin:
            state.lower += count
            state.upper += count
            return True
        if focal_low - margin <= low and high <= focal_high + margin:
            state.upper += count
            return True
        return False


class OriginalSpaceBoundEvaluator:
    """Rank bounds for the original-space variant OLP-CTA (Appendix C).

    Every cell contains the origin, so absolute score intervals are useless
    (they all start at zero).  Instead the sign of ``S(r) - S(p)`` is bounded
    by optimising the difference objective directly.  Fast bounds do not apply
    in this space (the min-vector is always the origin), matching the paper.
    """

    def __init__(
        self,
        tree: AggregateRTree,
        focal: np.ndarray,
        dimensionality: int,
        counters: LPCounters | None = None,
        tolerance: Tolerance | float | None = None,
    ) -> None:
        self.tree = tree
        self.focal = np.asarray(focal, dtype=float)
        #: Dimensionality d of the original preference space.
        self.dimensionality = dimensionality
        self.counters = counters
        self.tolerance = resolve_tolerance(tolerance)

    def evaluate(self, cell: CellView, k: int) -> RankBounds:
        """Compute rank bounds for a cone cell of the original space."""
        halfspaces = cell.bounding_halfspaces
        state = _TraversalState(lower=1, upper=1)
        if self.tree.dataset.cardinality:
            self._visit_node(self.tree.visit(self.tree.root), halfspaces, state, k)
        return RankBounds(state.lower, min(state.upper, self.tree.dataset.cardinality + 1))

    def _difference_interval(
        self, point: np.ndarray, halfspaces: tuple[Halfspace, ...]
    ) -> tuple[float, float]:
        objective = np.asarray(point, dtype=float) - self.focal
        low = minimize_linear(objective, halfspaces, self.dimensionality, self.counters).value
        high = maximize_linear(objective, halfspaces, self.dimensionality, self.counters).value
        return low, high

    def _visit_node(
        self,
        node: RTreeNode,
        halfspaces: tuple[Halfspace, ...],
        state: "_TraversalState",
        k: int,
    ) -> None:
        if state.lower > k:
            return
        if node.is_leaf:
            for position in node.record_positions:
                if state.lower > k:
                    return
                values = self.tree.dataset.values[int(position)]
                low, high = self._difference_interval(values, halfspaces)
                margin = self.tolerance.margin(max(abs(low), abs(high), 1.0))
                if low > margin:
                    state.lower += 1
                    state.upper += 1
                elif high > -margin:
                    # Near-zero maxima still count as potential beats: upper
                    # may only be overestimated by numerical noise, never
                    # underestimated.
                    state.upper += 1
            return
        for child in node.children:
            if state.lower > k:
                return
            corner_low, _ = self._difference_interval(child.mbr.low, halfspaces)
            if corner_low > self.tolerance.margin(max(abs(corner_low), 1.0)):
                state.lower += child.count
                state.upper += child.count
                continue
            _, corner_high = self._difference_interval(child.mbr.high, halfspaces)
            if corner_high <= -self.tolerance.margin(max(abs(corner_high), 1.0)):
                continue
            self._visit_node(self.tree.visit(child), halfspaces, state, k)


@dataclass
class _TraversalState:
    """Mutable accumulator shared by the bound traversals."""

    lower: int
    upper: int
