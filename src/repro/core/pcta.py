"""P-CTA — the Progressive Cell Tree Approach (Section 5, Algorithm 2).

P-CTA improves on CTA by

* processing records in *skyline batches* so that a record is only processed
  after every record dominating it (Invariant 1),
* short-circuiting hyperplane insertion through the dominance graph
  (a dominated record's negative halfspace covers any node already covered by
  its dominator's negative halfspace),
* reporting cells *progressively*: a promising cell whose pivots dominate all
  unprocessed records can never change again (Lemma 5) and is emitted before
  the algorithm terminates.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..records import Dataset
from ..robust import Tolerance
from .base import PreparedQuery, prepare_context
from .progressive import run_progressive
from .result import KSPRResult

__all__ = ["pcta"]


def pcta(
    dataset: Dataset,
    focal: np.ndarray | Sequence[float],
    k: int,
    finalize_geometry: bool = True,
    prepared: PreparedQuery | None = None,
    tolerance: Tolerance | float | None = None,
) -> KSPRResult:
    """Answer a kSPR query with the Progressive Cell Tree Approach.

    ``prepared`` optionally supplies precomputed partition / index state
    (see :mod:`repro.engine`); ``tolerance`` the shared numerical policy
    (see :mod:`repro.robust`).
    """
    context = prepare_context(
        dataset, focal, k, algorithm="P-CTA", prepared=prepared, tolerance=tolerance
    )
    return run_progressive(context, bound_evaluator=None, finalize_geometry=finalize_geometry)
