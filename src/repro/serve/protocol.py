"""Wire protocol of the serving tier: requests, payloads, SSE framing.

Everything that crosses the wire is defined here, so the asyncio service
(:mod:`repro.serve.service`), the HTTP front-end (:mod:`repro.serve.http`),
the client (:mod:`repro.serve.client`) and the test-suites all speak one
dialect:

* :class:`ServeRequest` — the parsed, validated form of one query request,
  with the wire-relative ``deadline_ms`` already converted to an absolute
  clock instant (:attr:`ServeRequest.deadline_at`) so the same budget covers
  admission queueing *and* stream compute;
* the payload builders — one JSON-able dict per event kind
  (:func:`approx_payload`, :func:`exact_payload`, :func:`partial_payload`,
  :func:`paused_payload`, :func:`error_payload`);
* the SSE framing — :func:`format_sse` / :func:`parse_sse`, the
  ``text/event-stream`` encoding both the server and the client use.

Parsing never *admits* anything: a request with an already-expired deadline
parses fine and is rejected by :class:`repro.serve.AdmissionController`
(satisfying "expired deadlines reject at admission, not mid-query"), while
structurally malformed input raises :class:`BadRequest` here.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..approx.estimator import ApproxSpec
from ..approx.result import ApproxKSPRResult
from ..core.result import KSPRResult, PartialKSPRResult
from ..exceptions import InvalidQueryError, ReproError

__all__ = [
    "BadRequest",
    "ServeRequest",
    "parse_request",
    "parse_update_batch",
    "approx_payload",
    "exact_payload",
    "partial_payload",
    "paused_payload",
    "delta_payload",
    "applied_payload",
    "error_payload",
    "format_sse",
    "parse_sse",
]


class BadRequest(ReproError):
    """A structurally malformed serving request (HTTP 400).

    Raised by :func:`parse_request` before any engine work happens; the
    ``reason`` travels in the error payload so clients can distinguish a
    protocol bug from an admission rejection.
    """

    #: HTTP status the front-end maps this error onto.
    status = 400
    #: Machine-readable rejection label.
    reason = "bad_request"

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


@dataclass(frozen=True)
class ServeRequest:
    """One parsed, validated serving request.

    Parameters
    ----------
    focal:
        The focal record, as a float array.
    k:
        Shortlist size.
    tenant:
        Admission-control identity (``None`` = anonymous, budgeted on the
        shared anonymous bucket).
    method:
        Exact method override for refinement / streaming (engine default
        when ``None``).
    approx:
        Accuracy contract of the phase-one estimate (service default when
        ``None``).
    refine:
        Whether a background exact refinement should follow the approximate
        answer (two-phase mode; default True).
    deadline_at:
        Absolute clock instant (same clock as the service) after which no
        further work may be done for this request; ``None`` = no deadline.
        Propagated into :meth:`repro.engine.Engine.query_stream` budgets.
    max_batches:
        Stream-mode work-unit cap per request (``None`` = run to budget).
    cost:
        Tokens this request charges against the tenant budget.
    anytime:
        Standing subscriptions only: maintain an anytime bracket instead
        of an exact answer.
    resume_from:
        Standing subscriptions only: the last event version the client
        acked before disconnecting; the replay resumes right after it
        (gap-free) or falls back to a fresh ``snapshot`` event.
    """

    focal: np.ndarray
    k: int
    tenant: str | None = None
    method: str | None = None
    approx: ApproxSpec | None = None
    refine: bool = True
    deadline_at: float | None = None
    max_batches: int | None = None
    cost: float = 1.0
    anytime: bool = False
    resume_from: int | None = None


def parse_request(
    payload: dict,
    *,
    now: float | None = None,
    clock: Callable[[], float] = time.perf_counter,
) -> ServeRequest:
    """Validate a decoded JSON body into a :class:`ServeRequest`.

    ``deadline_ms`` on the wire is relative (clients do not share the
    server's clock); it is converted here to the absolute
    :attr:`ServeRequest.deadline_at` using ``now`` (default: ``clock()``).
    A non-positive ``deadline_ms`` yields an already-expired instant —
    deliberately *not* an error here, so admission (and its counters) is the
    single place deadline rejections happen.

    Raises
    ------
    BadRequest
        For a non-object payload, missing/malformed ``focal`` or ``k``,
        non-finite focal values, or malformed optional fields.
    """
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    if "focal" not in payload:
        raise BadRequest("missing required field 'focal'")
    if "k" not in payload:
        raise BadRequest("missing required field 'k'")
    try:
        focal = np.asarray(payload["focal"], dtype=float)
    except (TypeError, ValueError) as error:
        raise BadRequest(f"malformed 'focal': {error}") from None
    if focal.ndim != 1 or focal.size == 0:
        raise BadRequest("'focal' must be a non-empty flat array of numbers")
    if not np.all(np.isfinite(focal)):
        raise BadRequest("'focal' values must be finite")
    try:
        k = int(payload["k"])
    except (TypeError, ValueError):
        raise BadRequest("'k' must be an integer") from None
    if k < 1:
        raise BadRequest("'k' must be a positive integer")

    tenant = payload.get("tenant")
    if tenant is not None and not isinstance(tenant, str):
        raise BadRequest("'tenant' must be a string")
    method = payload.get("method")
    if method is not None and not isinstance(method, str):
        raise BadRequest("'method' must be a string")

    approx = payload.get("approx")
    if approx is not None:
        try:
            approx = ApproxSpec.coerce(approx)
        except InvalidQueryError as error:
            raise BadRequest(f"malformed 'approx': {error}") from None

    refine = payload.get("refine", True)
    if not isinstance(refine, bool):
        raise BadRequest("'refine' must be a boolean")

    deadline_at = None
    if payload.get("deadline_ms") is not None:
        try:
            deadline_ms = float(payload["deadline_ms"])
        except (TypeError, ValueError):
            raise BadRequest("'deadline_ms' must be a number") from None
        deadline_at = (clock() if now is None else now) + deadline_ms / 1000.0

    max_batches = payload.get("max_batches")
    if max_batches is not None:
        try:
            max_batches = int(max_batches)
        except (TypeError, ValueError):
            raise BadRequest("'max_batches' must be an integer") from None
        if max_batches < 1:
            raise BadRequest("'max_batches' must be a positive integer")

    try:
        cost = float(payload.get("cost", 1.0))
    except (TypeError, ValueError):
        raise BadRequest("'cost' must be a number") from None
    if not cost > 0.0 or not np.isfinite(cost):
        raise BadRequest("'cost' must be a positive finite number")

    anytime = payload.get("anytime", False)
    if not isinstance(anytime, bool):
        raise BadRequest("'anytime' must be a boolean")

    resume_from = payload.get("resume_from")
    if resume_from is not None:
        try:
            resume_from = int(resume_from)
        except (TypeError, ValueError):
            raise BadRequest("'resume_from' must be an integer") from None
        if resume_from < 0:
            raise BadRequest("'resume_from' must be a non-negative integer")

    return ServeRequest(
        focal=focal,
        k=k,
        tenant=tenant,
        method=method,
        approx=approx,
        refine=refine,
        deadline_at=deadline_at,
        max_batches=max_batches,
        cost=cost,
        anytime=anytime,
        resume_from=resume_from,
    )


def parse_update_batch(payload: dict) -> "list":
    """Validate a decoded ``/v1/update`` body into :class:`~repro.live.UpdateOp` list.

    The body carries ``inserts`` (a list of value rows, or
    ``{"values": [...], "id": n}`` objects for explicit ids) and/or
    ``deletes`` (a list of record ids); inserts apply before deletes, in
    listed order.  Structural validation only — id discipline and
    dimensionality are enforced atomically by
    :meth:`repro.engine.Engine.apply_updates`.
    """
    from ..live.updates import UpdateOp

    if not isinstance(payload, dict):
        raise BadRequest("update body must be a JSON object")
    ops: list = []
    inserts = payload.get("inserts", [])
    if not isinstance(inserts, list):
        raise BadRequest("'inserts' must be a list")
    for item in inserts:
        record_id = None
        values = item
        if isinstance(item, dict):
            if "values" not in item:
                raise BadRequest("insert objects need a 'values' field")
            values = item["values"]
            record_id = item.get("id")
        try:
            row = np.asarray(values, dtype=float)
        except (TypeError, ValueError) as error:
            raise BadRequest(f"malformed insert values: {error}") from None
        if row.ndim != 1 or row.size == 0 or not np.all(np.isfinite(row)):
            raise BadRequest("insert values must be a non-empty flat finite array")
        if record_id is not None:
            try:
                record_id = int(record_id)
            except (TypeError, ValueError):
                raise BadRequest("insert 'id' must be an integer") from None
        ops.append(UpdateOp.insert(row, record_id))
    deletes = payload.get("deletes", [])
    if not isinstance(deletes, list):
        raise BadRequest("'deletes' must be a list")
    for item in deletes:
        try:
            ops.append(UpdateOp.delete(int(item)))
        except (TypeError, ValueError):
            raise BadRequest("'deletes' entries must be integers") from None
    if not ops:
        raise BadRequest("update body must carry at least one insert or delete")
    return ops


# --------------------------------------------------------------------- #
# payloads
# --------------------------------------------------------------------- #
def approx_payload(result: ApproxKSPRResult) -> dict[str, Any]:
    """The phase-one event: estimate, confidence interval, contract."""
    lower, upper = result.confidence_interval()
    return {
        "phase": "approx",
        "estimate": result.estimate,
        "ci_lower": lower,
        "ci_upper": upper,
        "samples": result.samples,
        "hits": result.hits,
        "epsilon": result.epsilon,
        "delta": result.delta,
        "meets": result.meets(),
        "mode": result.mode,
        "seed": result.seed,
        "k": result.k,
    }


def exact_payload(result: KSPRResult) -> dict[str, Any]:
    """The refinement / terminal event: the exact impact and region count."""
    return {
        "phase": "exact",
        "impact": result.impact_probability(),
        "regions": len(result),
        "k": result.k,
    }


def partial_payload(snapshot: PartialKSPRResult, seq: int) -> dict[str, Any]:
    """One streamed anytime snapshot: bracket, certified regions, progress.

    ``seq`` is the zero-based event index within the stream; clients use it
    to detect reordering (the property tests assert it matches tick order).
    """
    lower, upper = snapshot.impact_bracket()
    return {
        "phase": "partial",
        "seq": int(seq),
        "batches": snapshot.batches,
        "regions": len(snapshot.regions),
        "lower": lower,
        "upper": upper,
        "done": snapshot.done,
        "processed_records": snapshot.processed_records,
    }


def paused_payload(snapshot: PartialKSPRResult | None, seq: int) -> dict[str, Any]:
    """The terminal event of a budget-truncated stream (resumable checkpoint)."""
    return {
        "phase": "paused",
        "seq": int(seq),
        "resumable": True,
        "batches": 0 if snapshot is None else snapshot.batches,
        "regions": 0 if snapshot is None else len(snapshot.regions),
    }


def delta_payload(event: Any, seq: int) -> dict[str, Any]:
    """One standing-subscription event (a :class:`repro.live.DeltaEvent`).

    ``version`` is the standing query's strictly-monotone answer version
    (global across subscribers — the resume cursor); ``seq`` is the
    zero-based event index within *this* connection (the reordering
    detector, mirroring :func:`partial_payload`).
    """
    body = event.as_dict()
    body["phase"] = "delta" if event.kind != "snapshot" else "snapshot"
    body["seq"] = int(seq)
    return body


def applied_payload(applied: Any) -> dict[str, Any]:
    """The ``/v1/update`` response body (an :class:`repro.live.AppliedBatch`)."""
    return {
        "phase": "applied",
        "updates": len(applied),
        "inserts": applied.inserts,
        "deletes": applied.deletes,
        "assigned_ids": [
            op.record_id for op in applied.ops if op.op == "insert"
        ],
        "fingerprint": applied.fingerprint,
        "seq": applied.seq,
    }


def error_payload(reason: str, message: str, **extra: Any) -> dict[str, Any]:
    """A machine-readable error body (shared by HTTP errors and SSE aborts)."""
    return {"phase": "error", "reason": reason, "message": message, **extra}


# --------------------------------------------------------------------- #
# SSE framing
# --------------------------------------------------------------------- #
def format_sse(event: str, data: dict[str, Any]) -> bytes:
    """Encode one Server-Sent Event (``event:`` + JSON ``data:`` + blank line)."""
    body = json.dumps(data, separators=(",", ":"), sort_keys=True)
    return f"event: {event}\ndata: {body}\n\n".encode()


def parse_sse(text: str | bytes) -> list[tuple[str, dict[str, Any]]]:
    """Decode a ``text/event-stream`` body into ``[(event, data), ...]``.

    Tolerates trailing partial frames (they are ignored), so it can be used
    on a truncated capture; used by :class:`repro.serve.ServeClient` and the
    test-suites.
    """
    if isinstance(text, bytes):
        text = text.decode()
    events: list[tuple[str, dict[str, Any]]] = []
    for frame in text.split("\n\n"):
        event_name = None
        data_lines: list[str] = []
        for line in frame.splitlines():
            if line.startswith("event:"):
                event_name = line[len("event:"):].strip()
            elif line.startswith("data:"):
                data_lines.append(line[len("data:"):].strip())
        if event_name is not None and data_lines:
            try:
                decoded = json.loads("\n".join(data_lines))
            except json.JSONDecodeError:
                continue  # truncated trailing frame
            events.append((event_name, decoded))
    return events
