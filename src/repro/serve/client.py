"""A minimal asyncio client for :class:`~repro.serve.ServeServer`.

Stdlib-only, like the server: one :func:`asyncio.open_connection` per
request (the server closes connections after each response), incremental
SSE decoding so callers observe events the moment their frame arrives —
which is exactly what the load benchmark needs to measure
time-to-first-answer honestly — plus small conveniences for the JSON
endpoints.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Any, AsyncIterator

from .protocol import parse_sse

__all__ = ["ServeClient", "ServeHTTPError"]

logger = logging.getLogger(__name__)


class ServeHTTPError(Exception):
    """A non-2xx response, carrying the decoded error payload."""

    def __init__(self, status: int, payload: dict[str, Any]):
        super().__init__(f"HTTP {status}: {payload.get('message', payload)}")
        self.status = status
        self.payload = payload


class ServeClient:
    """Talks the ``repro.serve`` wire protocol to one server address."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = int(port)

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    async def _open(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict[str, str], asyncio.StreamReader, asyncio.StreamWriter]:
        """Send one request; return ``(status, headers, reader, writer)``."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        encoded = b"" if body is None else json.dumps(body).encode()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(encoded)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + encoded)
        await writer.drain()

        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split(maxsplit=2)
        if len(parts) < 2 or not parts[1].isdigit():
            writer.close()
            raise ConnectionError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers, reader, writer

    @staticmethod
    async def _read_body(reader: asyncio.StreamReader, headers: dict[str, str]) -> bytes:
        length = headers.get("content-length")
        if length is not None:
            return await reader.readexactly(int(length))
        return await reader.read()  # close-delimited

    @staticmethod
    def _check(status: int, body: bytes) -> dict[str, Any]:
        payload = json.loads(body.decode() or "null")
        if status >= 400:
            raise ServeHTTPError(status, payload if isinstance(payload, dict) else {})
        return payload

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    async def healthz(self) -> dict[str, Any]:
        """GET /healthz."""
        status, headers, reader, writer = await self._open("GET", "/healthz")
        try:
            return self._check(status, await self._read_body(reader, headers))
        finally:
            writer.close()

    async def metrics(self) -> str:
        """GET /metrics (Prometheus v0 text)."""
        status, headers, reader, writer = await self._open("GET", "/metrics")
        try:
            body = await self._read_body(reader, headers)
            if status >= 400:
                raise ServeHTTPError(status, json.loads(body.decode() or "{}"))
            return body.decode()
        finally:
            writer.close()

    async def query(self, request: dict) -> dict[str, Any]:
        """POST /v1/query with ``refine`` forced off: one JSON approx answer."""
        status, headers, reader, writer = await self._open(
            "POST", "/v1/query", {**request, "refine": False}
        )
        try:
            return self._check(status, await self._read_body(reader, headers))
        finally:
            writer.close()

    async def query_events(self, request: dict) -> AsyncIterator[tuple[str, dict[str, Any]]]:
        """POST /v1/query (two-phase SSE): yields events as frames arrive.

        The first yielded event is ``("approx", ...)`` — the caller's clock
        at that yield is the client-observed time-to-first-answer.  Closing
        the iterator early models a client disconnect: the connection drops
        and the server cancels the background refinement cooperatively.
        """
        async for event in self._sse("/v1/query", request):
            yield event

    async def stream_events(self, request: dict) -> AsyncIterator[tuple[str, dict[str, Any]]]:
        """POST /v1/stream: yields ``partial`` events then a terminal one."""
        async for event in self._sse("/v1/stream", request):
            yield event

    async def subscribe_events(self, request: dict) -> AsyncIterator[tuple[str, dict[str, Any]]]:
        """POST /v1/subscribe: a standing subscription's SSE events.

        Yields the initial ``snapshot`` (or the gap-free replay when the
        request carries ``resume_from``) and then one ``delta`` per repair,
        until the caller closes the iterator (modelling a disconnect).
        """
        async for event in self._sse("/v1/subscribe", request):
            yield event

    async def update(self, batch: dict) -> dict[str, Any]:
        """POST /v1/update: apply one atomic insert/delete batch."""
        status, headers, reader, writer = await self._open("POST", "/v1/update", batch)
        try:
            return self._check(status, await self._read_body(reader, headers))
        finally:
            writer.close()

    async def _sse(self, path: str, request: dict) -> AsyncIterator[tuple[str, dict[str, Any]]]:
        status, headers, reader, writer = await self._open("POST", path, request)
        try:
            if status >= 400:
                self._check(status, await self._read_body(reader, headers))
            buffer = b""
            while True:
                chunk = await reader.read(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n\n" in buffer:
                    frame, buffer = buffer.split(b"\n\n", 1)
                    for event in parse_sse(frame + b"\n\n"):
                        yield event
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError) as error:
                # The server closes after each response; a reset while we
                # drain the close handshake is expected, but keep a trace.
                logger.debug("connection reset while closing %s: %s", path, error)
