"""The asyncio serving core: estimate-then-refine over a blocking Engine.

:class:`KSPRService` is the transport-independent heart of ``repro.serve``.
It owns a small thread pool that runs the (synchronous, thread-safe)
:class:`~repro.engine.Engine` off the event loop, and exposes two async
entry points:

* :meth:`KSPRService.answer` — the **two-phase** path.  Phase one computes a
  sampled :class:`~repro.approx.ApproxKSPRResult` (milliseconds) and returns
  immediately; phase two refines to the exact answer in the background and
  resolves :meth:`TwoPhaseAnswer.refined`.  Identical concurrent refinements
  collapse onto one engine execution (**single-flight**, keyed on
  :meth:`~repro.engine.Engine.canonical_key`), and a refinement nobody is
  waiting for any more — every client disconnected — is cancelled
  cooperatively, leaving a resumable engine checkpoint instead of burning
  the pool.
* :meth:`KSPRService.stream` — the anytime path: bridges the engine's
  blocking :meth:`~repro.engine.Engine.query_stream` generator into an async
  iterator of ``(event, payload)`` pairs, propagating the request deadline
  into the stream budget and checkpointing on client disconnect.

Every request is gated by an :class:`~repro.serve.AdmissionController`
checkout, traced with a ``serve.*`` span, and measured into the service's
:class:`~repro.obs.MetricsRegistry` (time-to-first-answer, refinement
latency, admission verdicts, two-phase honesty).

**Honesty accounting.**  For every served approximate answer whose contract
held (``approx.meets()``), the service checks on refinement completion that
the exact impact lies inside the approximate confidence interval
(``approx.covers(exact)``) and counts ``serve.honesty.checked`` /
``serve.honesty.violations``.  Coverage is a *statistical* guarantee — a
``(1 - delta)`` interval may miss with probability up to ``delta`` per
unique query, and a skewed replay repeats that deterministic miss for every
hit on the same key — so the load benchmark bounds the violation rate
across unique queries at ``delta`` plus a three-sigma binomial allowance
rather than asserting zero.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Callable, Iterator

from ..approx.estimator import ApproxSpec
from ..approx.result import ApproxKSPRResult
from ..core.result import KSPRResult, PartialKSPRResult
from ..exceptions import SnapshotError
from ..obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from ..obs.names import (
    SERVE_ACTIVE,
    SERVE_ANSWERS_TOTAL,
    SERVE_DISCONNECTS,
    SERVE_HONESTY_CHECKED,
    SERVE_HONESTY_VIOLATIONS,
    SERVE_REFINE_SECONDS,
    SERVE_REFINEMENTS_CANCELLED,
    SERVE_REFINEMENTS_COMPLETED,
    SERVE_REFINEMENTS_DEDUPLICATED,
    SERVE_REFINEMENTS_STARTED,
    SERVE_REJECTED_PREFIX,
    SERVE_STREAMS_TOTAL,
    SERVE_SUBSCRIPTION_DELTAS,
    SERVE_SUBSCRIPTION_RESUMES,
    SERVE_SUBSCRIPTIONS_TOTAL,
    SERVE_TTFA_SECONDS,
    SERVE_UPDATES_TOTAL,
)
from ..obs.trace import NULL_TRACER
from .admission import AdmissionController, Checkout
from .protocol import (
    ServeRequest,
    applied_payload,
    delta_payload,
    exact_payload,
    partial_payload,
    paused_payload,
)

__all__ = [
    "ServeConfig",
    "TwoPhaseAnswer",
    "KSPRService",
]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one :class:`KSPRService` deployment.

    Parameters
    ----------
    approx:
        Default accuracy contract of phase-one estimates (requests may
        override it per-call).
    refine_method:
        Exact method used for refinements and streams when the request does
        not name one (``None`` = the engine default).
    max_concurrent:
        Admission cap on simultaneously-live requests.
    tenant_burst / tenant_rate:
        Default per-tenant token-bucket capacity and refill (tokens/s).
    tenant_overrides:
        ``{tenant: (burst, rate)}`` budget overrides.
    worker_threads:
        Size of the thread pool bridging the event loop to the blocking
        engine.
    clock:
        Monotonic time source shared by admission, deadlines and latency
        metrics (injectable for deterministic tests).
    """

    approx: ApproxSpec = field(default_factory=lambda: ApproxSpec(epsilon=0.05, delta=0.05))
    refine_method: str | None = None
    max_concurrent: int = 64
    tenant_burst: float = 64.0
    tenant_rate: float = 32.0
    tenant_overrides: dict[str, tuple[float, float]] | None = None
    worker_threads: int = 4
    clock: Callable[[], float] = time.perf_counter


class _RefinementHandle:
    """One in-flight background refinement, shared by all its waiters.

    The single-flight table maps a canonical engine key to at most one live
    handle.  ``waiters`` counts the answers attached to it; when the last
    waiter detaches before completion the cooperative ``cancel`` event is
    set, the engine stream stops at its next work-unit boundary, and the
    engine's own checkpoint logic preserves the partial progress.
    """

    __slots__ = ("key", "cancel", "future", "waiters", "lock", "started_at")

    def __init__(self, key: tuple, started_at: float) -> None:
        self.key = key
        self.cancel = threading.Event()
        #: Resolves to the exact :class:`KSPRResult`, or ``None`` if the
        #: refinement was cancelled before finishing.
        self.future: concurrent.futures.Future = concurrent.futures.Future()
        self.waiters = 0
        self.lock = threading.Lock()
        self.started_at = started_at

    def attach(self) -> None:
        """Register one more waiter."""
        with self.lock:
            self.waiters += 1

    def detach(self) -> None:
        """Unregister a waiter; the last one out requests cancellation."""
        with self.lock:
            self.waiters -= 1
            last = self.waiters <= 0
        if last and not self.future.done():
            self.cancel.set()

    def waiter(self) -> concurrent.futures.Future:
        """A per-caller future mirroring :attr:`future`.

        Awaiting the shared future directly through
        :func:`asyncio.wrap_future` is unsafe — cancelling one waiter's task
        would cancel the shared future under every other waiter.  The mirror
        absorbs per-waiter cancellation.
        """
        mirror: concurrent.futures.Future = concurrent.futures.Future()

        def _propagate(done: concurrent.futures.Future) -> None:
            if mirror.cancelled():
                return
            try:
                error = done.exception()
                if error is not None:
                    mirror.set_exception(error)
                else:
                    mirror.set_result(done.result())
            # analyze: ignore[EXC001] -- benign race: mirror settled/cancelled by its waiter
            except (concurrent.futures.InvalidStateError, concurrent.futures.CancelledError):
                pass

        self.future.add_done_callback(_propagate)
        return mirror


class TwoPhaseAnswer:
    """The result of :meth:`KSPRService.answer`: approx now, exact later.

    ``approx`` and ``ttfa`` (time-to-first-answer, seconds) are available
    immediately; :meth:`refined` awaits the background exact phase.  The
    answer must be closed when the client goes away — :meth:`close` detaches
    from the shared refinement (cancelling it if this was the last waiter)
    and releases the admission checkout, so a disconnect never leaks
    capacity.  Usable as an async context manager.
    """

    def __init__(
        self,
        service: "KSPRService",
        request: ServeRequest,
        approx: ApproxKSPRResult,
        ttfa: float,
        checkout: Checkout,
        handle: _RefinementHandle | None,
    ) -> None:
        self.request = request
        self.approx = approx
        self.ttfa = ttfa
        self._service = service
        self._checkout = checkout
        self._handle = handle
        self._closed = False

    @property
    def will_refine(self) -> bool:
        """Whether a background exact refinement is attached."""
        return self._handle is not None

    async def refined(self) -> KSPRResult | None:
        """Await the exact refinement (``None`` if it was cancelled)."""
        if self._handle is None:
            return None
        return await asyncio.wrap_future(self._handle.waiter())

    def close(self) -> None:
        """Detach from the refinement and release capacity (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._handle is not None:
            self._handle.detach()
        self._checkout.release()

    async def __aenter__(self) -> "TwoPhaseAnswer":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        self.close()


def _next_or_none(iterator: Iterator[PartialKSPRResult]) -> PartialKSPRResult | None:
    """``next`` with a ``None`` sentinel (picklable across the pool bridge)."""
    return next(iterator, None)


class KSPRService:
    """Asyncio serving facade over one :class:`~repro.engine.Engine`.

    Parameters
    ----------
    engine:
        The (thread-safe) engine answering queries.
    config:
        Deployment tunables; defaults to :class:`ServeConfig()`.
    admission:
        Externally-built controller (one is constructed from ``config``
        when omitted).
    registry:
        Metrics sink; a private :class:`~repro.obs.MetricsRegistry` is
        created when omitted.
    tracer:
        Span sink for request-path tracing (no-op by default).
    """

    def __init__(
        self,
        engine,
        config: ServeConfig | None = None,
        *,
        admission: AdmissionController | None = None,
        registry: MetricsRegistry | None = None,
        tracer=None,
        snapshot_store=None,
    ) -> None:
        self.engine = engine
        #: Optional :class:`~repro.snapshot.SnapshotStore`.  When configured,
        #: :meth:`commit_snapshot` persists the engine's state on demand and
        #: :meth:`close` commits once more on shutdown, so the next process
        #: can restore a warm engine with ``Engine.from_snapshot``.
        self.snapshot_store = snapshot_store
        self.config = config or ServeConfig()
        self.clock = self.config.clock
        self.admission = admission or AdmissionController(
            max_concurrent=self.config.max_concurrent,
            tenant_burst=self.config.tenant_burst,
            tenant_rate=self.config.tenant_rate,
            tenant_overrides=self.config.tenant_overrides,
            clock=self.clock,
        )
        self.registry = registry or MetricsRegistry()
        self.tracer = tracer or NULL_TRACER
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.worker_threads, thread_name_prefix="repro-serve"
        )
        self._flight_lock = threading.Lock()
        self._refinements: dict[tuple, _RefinementHandle] = {}
        self._finalizers: list[concurrent.futures.Future] = []
        self._closed = False

        registry = self.registry
        self._m_ttfa = registry.histogram(
            SERVE_TTFA_SECONDS, "time-to-first-answer of two-phase requests",
            bounds=DEFAULT_LATENCY_BUCKETS,
        )
        self._m_refine = registry.histogram(
            SERVE_REFINE_SECONDS, "background exact refinement latency",
            bounds=DEFAULT_LATENCY_BUCKETS,
        )
        self._m_answers = registry.counter(SERVE_ANSWERS_TOTAL, "two-phase answers served")
        self._m_streams = registry.counter(SERVE_STREAMS_TOTAL, "anytime streams served")
        self._m_refine_started = registry.counter(
            SERVE_REFINEMENTS_STARTED, "background refinements launched"
        )
        self._m_refine_done = registry.counter(
            SERVE_REFINEMENTS_COMPLETED, "background refinements finished exact"
        )
        self._m_refine_cancelled = registry.counter(
            SERVE_REFINEMENTS_CANCELLED, "background refinements cancelled by disconnects"
        )
        self._m_refine_dedup = registry.counter(
            SERVE_REFINEMENTS_DEDUPLICATED, "refinements collapsed onto an in-flight one"
        )
        self._m_honesty_checked = registry.counter(
            SERVE_HONESTY_CHECKED, "refined answers checked against their approx CI"
        )
        self._m_honesty_violations = registry.counter(
            SERVE_HONESTY_VIOLATIONS, "exact impacts outside their approx CI"
        )
        self._m_disconnects = registry.counter(
            SERVE_DISCONNECTS, "requests abandoned before their stream finished"
        )
        self._m_subscriptions = registry.counter(
            SERVE_SUBSCRIPTIONS_TOTAL, "standing subscriptions opened"
        )
        self._m_sub_deltas = registry.counter(
            SERVE_SUBSCRIPTION_DELTAS, "delta events delivered to subscribers"
        )
        self._m_sub_resumes = registry.counter(
            SERVE_SUBSCRIPTION_RESUMES, "gap-free subscription resumes"
        )
        self._m_updates = registry.counter(
            SERVE_UPDATES_TOTAL, "update batches applied through the serving tier"
        )
        self._g_active = registry.gauge(SERVE_ACTIVE, "live admitted requests")

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _admit(self, request: ServeRequest) -> Checkout:
        """Admission gate shared by both entry points (counts rejections)."""
        from .admission import AdmissionError

        try:
            checkout = self.admission.admit(
                request.tenant, cost=request.cost, deadline_at=request.deadline_at
            )
        except AdmissionError as error:
            self.registry.counter(
                f"{SERVE_REJECTED_PREFIX}{error.reason}.total",
                "requests rejected at admission",
            ).inc()
            raise
        self._g_active.set(self.admission.active)
        return checkout

    async def _run_blocking(self, fn, *args, **kwargs):
        """Run a blocking engine call on the pool and await its result."""
        return await asyncio.wrap_future(self._pool.submit(fn, *args, **kwargs))

    async def commit_snapshot(self) -> str:
        """Persist the engine's state — and its warm caches — right now.

        Runs :meth:`Engine.commit <repro.engine.Engine.commit>` against the
        configured snapshot store on the worker pool (the event loop never
        blocks on disk I/O) and returns the snapshot id.  Raises
        :class:`~repro.exceptions.SnapshotError` when the service was built
        without ``snapshot_store=``.
        """
        if self.snapshot_store is None:
            raise SnapshotError(
                "this service was configured without a snapshot store; pass "
                "snapshot_store= to KSPRService to enable commits"
            )
        return await self._run_blocking(self.engine.commit, self.snapshot_store)

    def _note_honesty(self, approx: ApproxKSPRResult, done: concurrent.futures.Future) -> None:
        """Score one served approx answer against its arrived refinement."""
        if done.cancelled() or done.exception() is not None:
            return
        exact = done.result()
        if exact is None or not approx.meets():
            return
        self._m_honesty_checked.inc()
        if not approx.covers(exact.impact_probability()):
            self._m_honesty_violations.inc()

    # ------------------------------------------------------------------ #
    # two-phase answers
    # ------------------------------------------------------------------ #
    async def answer(self, request: ServeRequest) -> TwoPhaseAnswer:
        """Serve ``request`` in two phases: sampled estimate now, exact later.

        Admits the request (raising
        :class:`~repro.serve.AdmissionError` when shed), computes the
        approximate phase on the pool, then — unless ``request.refine`` is
        false — attaches to the single-flight background refinement for the
        request's canonical key.  Returns as soon as the estimate exists.
        """
        span = self.tracer.span(
            "serve.answer", tenant=request.tenant or "(anonymous)", k=int(request.k)
        )
        checkout = self._admit(request)
        started = self.clock()
        spec = request.approx or self.config.approx
        try:
            approx = await self._run_blocking(
                self.engine.query, request.focal, int(request.k), approx=spec
            )
        except BaseException:
            checkout.release()
            self._g_active.set(self.admission.active)
            span.set(outcome="error")
            span.finish()
            raise
        ttfa = self.clock() - started
        self._m_ttfa.observe(ttfa)
        self._m_answers.inc()

        handle = None
        if request.refine:
            handle = self._acquire_refinement(request)
            handle.future.add_done_callback(
                lambda done, approx=approx: self._note_honesty(approx, done)
            )
        else:
            # No background phase: the lifecycle ends when the answer closes.
            pass
        span.set(outcome="answered", refine=bool(handle is not None))
        span.note(ttfa_seconds=ttfa)
        span.finish()

        answer = TwoPhaseAnswer(self, request, approx, ttfa, checkout, handle)
        if handle is not None:
            # The checkout must outlive the background phase; release it when
            # the shared refinement settles (idempotent with answer.close()).
            handle.future.add_done_callback(lambda _done: self._on_settled(checkout))
        return answer

    def _on_settled(self, checkout: Checkout) -> None:
        checkout.release()
        self._g_active.set(self.admission.active)

    def _acquire_refinement(self, request: ServeRequest) -> _RefinementHandle:
        """Join the in-flight refinement for this key, or launch one."""
        method = request.method or self.config.refine_method
        key = self.engine.canonical_key(request.focal, int(request.k), method=method)
        with self._flight_lock:
            handle = self._refinements.get(key)
            if handle is not None and not handle.future.done() and not handle.cancel.is_set():
                handle.attach()
                self._m_refine_dedup.inc()
                return handle
            handle = _RefinementHandle(key, self.clock())
            handle.attach()
            self._refinements[key] = handle
            self._m_refine_started.inc()
            self._pool.submit(self._refine, handle, request, method)
            return handle

    def _refine(self, handle: _RefinementHandle, request: ServeRequest, method: str | None) -> None:
        """Pool-thread body of one background refinement (exact phase)."""
        span = self.tracer.span("serve.refine", k=int(request.k))
        final: PartialKSPRResult | None = None
        try:
            # capture=False: refinement needs the exact terminal result, not
            # per-batch brackets — and a cancelled drain then checkpoints
            # cheaply inside the engine for a later resume.
            for partial in self.engine.query_stream(
                request.focal, int(request.k), method=method,
                cancel=handle.cancel, capture=False,
            ):
                final = partial
        except BaseException as error:
            span.set(outcome="error")
            span.finish()
            if not handle.future.done():
                handle.future.set_exception(error)
            self._forget(handle)
            return
        elapsed = self.clock() - handle.started_at
        if final is not None and final.done:
            self._m_refine.observe(elapsed)
            self._m_refine_done.inc()
            span.set(outcome="exact")
            if not handle.future.done():
                handle.future.set_result(final.to_result())
        else:
            self._m_refine_cancelled.inc()
            span.set(outcome="cancelled")
            if not handle.future.done():
                handle.future.set_result(None)
        span.note(refine_seconds=elapsed)
        span.finish()
        self._forget(handle)

    def _forget(self, handle: _RefinementHandle) -> None:
        with self._flight_lock:
            if self._refinements.get(handle.key) is handle:
                del self._refinements[handle.key]

    # ------------------------------------------------------------------ #
    # anytime streaming
    # ------------------------------------------------------------------ #
    async def stream(self, request: ServeRequest) -> AsyncIterator[tuple[str, dict[str, Any]]]:
        """Serve ``request`` as an async stream of ``(event, payload)`` pairs.

        Yields ``("partial", ...)`` for every anytime snapshot (brackets
        tightening monotonically), then exactly one terminal event: either
        ``("exact", ...)`` when the stream finished, or ``("paused", ...)``
        when its deadline/batch budget truncated it (the engine keeps a
        resumable checkpoint).  The request deadline propagates into the
        engine's stream budget, so compute stops at the same instant the
        contract expires.

        Closing the iterator early (client disconnect) cancels the engine
        stream cooperatively, checkpoints its progress, and releases the
        admission checkout — asynchronously; await :meth:`quiesce` to block
        until such cleanups finish.
        """
        span = self.tracer.span(
            "serve.stream", tenant=request.tenant or "(anonymous)", k=int(request.k)
        )
        checkout = self._admit(request)
        self._m_streams.inc()
        cancel = threading.Event()
        method = request.method or self.config.refine_method
        try:
            # query_stream() validates and takes the engine lock eagerly,
            # before returning its generator — keep that off the event loop.
            iterator = await self._run_blocking(
                self.engine.query_stream,
                request.focal, int(request.k), method=method,
                deadline_at=request.deadline_at,
                max_batches=request.max_batches,
                cancel=cancel, capture=True,
            )
        except BaseException:
            checkout.release()
            self._g_active.set(self.admission.active)
            span.set(outcome="error")
            span.finish()
            raise
        seq = 0
        last: PartialKSPRResult | None = None
        pending: concurrent.futures.Future | None = None
        completed = False
        try:
            while True:
                pending = self._pool.submit(_next_or_none, iterator)
                item = await asyncio.wrap_future(pending)
                pending = None
                if item is None:
                    break
                last = item
                if item.done:
                    yield "exact", exact_payload(item.to_result())
                else:
                    yield "partial", partial_payload(item, seq)
                seq += 1
            if last is None or not last.done:
                yield "paused", paused_payload(last, seq)
            completed = True
        finally:
            cancel.set()
            if not completed:
                self._m_disconnects.inc()
            span.set(outcome="complete" if completed else "disconnected")
            span.note(events=seq)
            span.finish()
            # Cleanup must not run inside the (possibly cancelled) consumer
            # task: hand it to the pool, track it for quiesce().
            finalizer = self._pool.submit(self._finalize_stream, iterator, pending, checkout)
            with self._flight_lock:
                self._finalizers.append(finalizer)

    def _finalize_stream(
        self,
        iterator: Iterator[PartialKSPRResult],
        pending: concurrent.futures.Future | None,
        checkout: Checkout,
    ) -> None:
        """Pool-thread teardown of one stream: drain, checkpoint, release."""
        try:
            if pending is not None:
                # A next() may still be executing the generator frame; wait it
                # out (the cancel event bounds it to one work unit) so close()
                # below never races a running frame.
                concurrent.futures.wait([pending])
            # Closing the suspended generator raises GeneratorExit inside the
            # engine's finally block, which checkpoints unfinished progress.
            iterator.close()
        finally:
            checkout.release()
            self._g_active.set(self.admission.active)

    # ------------------------------------------------------------------ #
    # standing subscriptions & updates
    # ------------------------------------------------------------------ #
    async def subscribe(self, request: ServeRequest) -> AsyncIterator[tuple[str, dict[str, Any]]]:
        """Serve ``request`` as a standing subscription: an async stream of
        ``(event, payload)`` pairs that never ends on its own.

        Registers (or joins) the engine-side :class:`~repro.live.StandingQuery`
        for the request's canonical key, then yields its catch-up events
        followed by every live :class:`~repro.live.DeltaEvent` the repair
        pipeline emits — in strict ``version`` order, with a per-connection
        ``seq``.  ``request.resume_from`` replays gap-free from the last
        acked version when the bounded event log still covers it, and falls
        back to a single fresh ``snapshot`` event otherwise (never a gap,
        never a duplicate).

        Closing the iterator (client disconnect) detaches the listener and
        releases the admission checkout immediately; the standing query
        itself stays registered so a reconnect can resume it.
        """
        span = self.tracer.span(
            "serve.subscribe", tenant=request.tenant or "(anonymous)", k=int(request.k)
        )
        checkout = self._admit(request)
        self._m_subscriptions.inc()
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()

        def listener(event) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, event)

        method = request.method or self.config.refine_method

        def _register():
            # subscribe() may cold-compute the initial answer (blocking);
            # attach() is atomic with it from this thread's point of view —
            # the returned catch-up plus the queued live events form one
            # gap-free version-ordered sequence.
            standing = self.engine.subscribe(
                request.focal, int(request.k), method, anytime=request.anytime
            )
            return standing, standing.attach(listener, resume_from=request.resume_from)

        try:
            standing, catch_up = await self._run_blocking(_register)
        except BaseException:
            checkout.release()
            self._g_active.set(self.admission.active)
            span.set(outcome="error")
            span.finish()
            raise
        if request.resume_from is not None:
            resumed = not catch_up or catch_up[0].version == int(request.resume_from) + 1
            if resumed:
                self._m_sub_resumes.inc()
        seq = 0
        try:
            for event in catch_up:
                payload = delta_payload(event, seq)
                self._m_sub_deltas.inc()
                seq += 1
                yield payload["phase"], payload
            while True:
                event = await queue.get()
                payload = delta_payload(event, seq)
                self._m_sub_deltas.inc()
                seq += 1
                yield payload["phase"], payload
        finally:
            # Unlike stream teardown this never blocks (no generator frame
            # to close): detach + release are lock-bounded and instant.
            standing.detach(listener)
            checkout.release()
            self._g_active.set(self.admission.active)
            span.set(outcome="disconnected")
            span.note(events=seq)
            span.finish()

    async def apply_updates(self, updates) -> dict[str, Any]:
        """Apply one update batch through the engine, off the event loop.

        ``updates`` is an :class:`~repro.live.UpdateBatch` or a sequence of
        :class:`~repro.live.UpdateOp` (e.g. from
        :func:`~repro.serve.protocol.parse_update_batch`).  The batch is
        atomic — every standing subscriber observes either the pre-batch or
        the post-batch dataset, and their repairs have already run by the
        time this returns.  Returns the ``applied`` response payload.
        """
        span = self.tracer.span("serve.update")
        try:
            applied = await self._run_blocking(self.engine.apply_updates, updates)
        except BaseException:
            span.set(outcome="error")
            span.finish()
            raise
        self._m_updates.inc()
        span.set(outcome="applied", updates=len(applied))
        span.finish()
        return applied_payload(applied)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def pending_refinements(self) -> int:
        """Number of in-flight background refinements (test/ops probe)."""
        with self._flight_lock:
            return len(self._refinements)

    async def quiesce(self, timeout: float = 10.0) -> bool:
        """Wait for background refinements and stream cleanups to settle.

        Returns ``True`` when everything settled within ``timeout`` seconds.
        Tests use this to make disconnect cleanup deterministic before
        asserting "no orphaned checkout".
        """
        deadline = self.clock() + timeout
        while True:
            with self._flight_lock:
                self._finalizers = [f for f in self._finalizers if not f.done()]
                busy = bool(self._finalizers) or bool(self._refinements)
            if not busy:
                return True
            if self.clock() >= deadline:
                return False
            await asyncio.sleep(0.005)

    async def close(self) -> None:
        """Cancel in-flight refinements, drain cleanups, stop the pool."""
        if self._closed:
            return
        self._closed = True
        with self._flight_lock:
            handles = list(self._refinements.values())
        for handle in handles:
            handle.cancel.set()
        await self.quiesce()
        if self.snapshot_store is not None:
            # Durable shutdown: persist the final dataset state plus every
            # warm result entry and resumable stream checkpoint, so the next
            # process picks up with ``Engine.from_snapshot`` where this one
            # left off.
            await self._run_blocking(self.engine.commit, self.snapshot_store)
        self._pool.shutdown(wait=True)
