"""A stdlib-only asyncio HTTP/1.1 front-end for :class:`KSPRService`.

No web framework: connections are served straight off
:func:`asyncio.start_server` with a minimal, strict HTTP/1.1 parser —
enough for the serving protocol, the load benchmark and the test-suites,
with zero dependencies beyond the standard library.

Routes
------
``POST /v1/query``
    The two-phase path.  With ``refine`` true (default) the response is a
    Server-Sent-Events stream: one ``approx`` event as soon as the sampled
    estimate exists, then one ``exact`` event when the background refinement
    lands (or an ``error`` event if it was cancelled).  With ``refine``
    false, a single JSON object (the approx payload).
``POST /v1/stream``
    The anytime path: an SSE stream of ``partial`` events whose impact
    brackets tighten monotonically, terminated by ``exact`` (finished) or
    ``paused`` (budget truncated, checkpoint kept).
``POST /v1/subscribe``
    The standing-query path: an SSE stream that starts with a ``snapshot``
    (or a gap-free replay when ``resume_from`` is given) and then carries a
    ``delta`` event for every incremental repair, in strict ``version``
    order, until the client disconnects.
``POST /v1/update``
    Apply one atomic batch of inserts/deletes; responds with a JSON
    ``applied`` payload once every standing query has been repaired.
``GET /metrics``
    The service registry in Prometheus v0 text format.
``GET /healthz``
    Liveness probe.

Every response carries ``Connection: close`` — SSE bodies are delimited by
connection close, which keeps the framing trivial and matches how the
benchmark client measures time-to-first-answer.  Client disconnects are
detected by watching the read side for EOF concurrently with the response;
a disconnect mid-stream cancels the underlying engine work cooperatively
(checkpointing partial progress) and releases the admission slot.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Any

from ..exceptions import InvalidDatasetError, InvalidQueryError
from ..obs.export import registry_to_prometheus
from ..obs.names import SERVE_CONNECTION_RESETS
from .admission import AdmissionError
from .protocol import (
    BadRequest,
    error_payload,
    exact_payload,
    format_sse,
    parse_request,
    parse_update_batch,
)
from .service import KSPRService

__all__ = ["ServeServer"]

logger = logging.getLogger(__name__)

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Upper bound on request bodies; a focal vector is tiny, anything bigger
#: than this is hostile or broken.
_MAX_BODY = 1 << 20

_SSE_HEADERS = (
    "Content-Type: text/event-stream\r\n"
    "Cache-Control: no-cache\r\n"
)


class _HTTPError(Exception):
    """Internal short-circuit carrying a ready-to-send error response."""

    def __init__(self, status: int, payload: dict[str, Any], headers: dict[str, str] | None = None):
        super().__init__(payload.get("message", ""))
        self.status = status
        self.payload = payload
        self.headers = headers or {}


class ServeServer:
    """An in-process asyncio HTTP server wrapping one :class:`KSPRService`.

    Binds ``host:port`` (``port=0`` picks a free port — the test and
    benchmark mode) on :meth:`start`; :meth:`stop` closes the listener and
    quiesces the service.  Usable as an async context manager.
    """

    def __init__(self, service: KSPRService, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: asyncio.AbstractServer | None = None

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` the server is listening on."""
        return self.host, self.port

    async def start(self) -> "ServeServer":
        """Bind the listener and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        return self

    async def stop(self) -> None:
        """Stop accepting, drain background work, shut the service down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()

    async def __aenter__(self) -> "ServeServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HTTPError as error:
                await self._send_json(writer, error.status, error.payload, error.headers)
                return
            except (asyncio.IncompleteReadError, ConnectionError, ValueError):
                return  # half-open or garbled connection: nothing to answer
            try:
                await self._dispatch(method, path, body, reader, writer)
            except _HTTPError as error:
                await self._send_json(writer, error.status, error.payload, error.headers)
            except (ConnectionError, asyncio.IncompleteReadError) as error:
                self._record_reset(path, "mid-response", error)
            except Exception as error:  # pragma: no cover - defensive 500
                try:
                    await self._send_json(
                        writer, 500, error_payload("internal", f"{type(error).__name__}: {error}")
                    )
                except ConnectionError as reset:
                    self._record_reset(path, "sending error response", reset)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError as error:
                self._record_reset(None, "closing", error)

    def _record_reset(self, path: str | None, where: str, error: BaseException) -> None:
        """Account one dropped client connection instead of losing it silently."""
        self.service.registry.counter(
            SERVE_CONNECTION_RESETS,
            "client connections dropped mid-response at the HTTP layer",
        ).inc()
        logger.debug(
            "client connection dropped %s (%s): %s", where, path or "(pre-route)", error
        )

    async def _read_request(self, reader: asyncio.StreamReader) -> tuple[str, str, bytes]:
        """Parse one request: ``(method, path, body)``; raise _HTTPError on junk."""
        request_line = await reader.readline()
        if not request_line:
            raise ConnectionError("empty request")
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HTTPError(400, error_payload("bad_request", "malformed request line"))
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _HTTPError(413, error_payload("bad_request", "request body too large"))
        body = await reader.readexactly(length) if length else b""
        return method, path.split("?", 1)[0], body

    async def _dispatch(
        self,
        method: str,
        path: str,
        body: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, {"status": "ok"})
        elif path == "/metrics" and method == "GET":
            text = registry_to_prometheus(self.service.registry)
            await self._send_raw(writer, 200, text.encode(), "text/plain; version=0.0.4")
        elif path == "/v1/query" and method == "POST":
            await self._query(self._parse_body(body), reader, writer)
        elif path == "/v1/stream" and method == "POST":
            await self._stream(self._parse_body(body), reader, writer)
        elif path == "/v1/subscribe" and method == "POST":
            await self._subscribe(self._parse_body(body), reader, writer)
        elif path == "/v1/update" and method == "POST":
            await self._update(self._parse_json(body), writer)
        elif path in (
            "/healthz", "/metrics", "/v1/query", "/v1/stream", "/v1/subscribe", "/v1/update"
        ):
            raise _HTTPError(405, error_payload("bad_request", f"{method} not allowed on {path}"))
        else:
            raise _HTTPError(404, error_payload("not_found", f"no route {path!r}"))

    def _parse_json(self, body: bytes) -> Any:
        try:
            return json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise _HTTPError(400, error_payload("bad_request", f"invalid JSON body: {error}"))

    def _parse_body(self, body: bytes) -> dict:
        payload = self._parse_json(body)
        try:
            return parse_request(payload, clock=self.service.clock)
        except BadRequest as error:
            raise _HTTPError(400, error_payload("bad_request", error.message))
        except InvalidQueryError as error:
            raise _HTTPError(400, error_payload("bad_request", str(error)))

    @staticmethod
    def _admission_http_error(error: AdmissionError) -> _HTTPError:
        payload = error_payload(error.reason, error.message)
        headers = {}
        if error.retry_after is not None:
            payload["retry_after"] = error.retry_after
            headers["Retry-After"] = f"{error.retry_after:.3f}"
        return _HTTPError(error.status, payload, headers)

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #
    async def _query(self, request, reader, writer) -> None:
        """POST /v1/query — the two-phase estimate-then-refine path."""
        try:
            answer = await self.service.answer(request)
        except AdmissionError as error:
            raise self._admission_http_error(error) from None
        except InvalidQueryError as error:
            raise _HTTPError(400, error_payload("bad_request", str(error))) from None
        try:
            from .protocol import approx_payload

            first = approx_payload(answer.approx)
            first["ttfa_ms"] = answer.ttfa * 1000.0
            if not answer.will_refine:
                await self._send_json(writer, 200, first)
                return
            await self._start_sse(writer)
            writer.write(format_sse("approx", first))
            await writer.drain()

            eof_watch = asyncio.ensure_future(reader.read(1))
            refined = asyncio.ensure_future(answer.refined())
            try:
                done, _pending = await asyncio.wait(
                    {eof_watch, refined}, return_when=asyncio.FIRST_COMPLETED
                )
                if refined in done:
                    exact = refined.result()
                    if exact is not None:
                        writer.write(format_sse("exact", exact_payload(exact)))
                    else:
                        writer.write(format_sse(
                            "error",
                            error_payload("refine_cancelled", "refinement was cancelled"),
                        ))
                    await writer.drain()
                # else: client disconnected — answer.close() below detaches
                # the waiter, cancelling the refinement if it was the last.
            finally:
                eof_watch.cancel()
                refined.cancel()
        finally:
            answer.close()

    async def _stream(self, request, reader, writer) -> None:
        """POST /v1/stream — the anytime partial-result path."""
        events = self.service.stream(request)
        try:
            first = await anext(events)
        except AdmissionError as error:
            await events.aclose()
            raise self._admission_http_error(error) from None
        except InvalidQueryError as error:
            await events.aclose()
            raise _HTTPError(400, error_payload("bad_request", str(error))) from None

        await self._start_sse(writer)
        eof_watch = asyncio.ensure_future(reader.read(1))
        try:
            name, payload = first
            writer.write(format_sse(name, payload))
            await writer.drain()
            while not eof_watch.done():
                nxt = asyncio.ensure_future(anext(events))
                done, _pending = await asyncio.wait(
                    {eof_watch, nxt}, return_when=asyncio.FIRST_COMPLETED
                )
                if nxt not in done:
                    nxt.cancel()
                    break
                try:
                    name, payload = nxt.result()
                except StopAsyncIteration:
                    break
                writer.write(format_sse(name, payload))
                await writer.drain()
        finally:
            eof_watch.cancel()
            # aclose() runs the generator's finally: cooperative cancel,
            # engine checkpoint, checkout release.
            await events.aclose()

    async def _subscribe(self, request, reader, writer) -> None:
        """POST /v1/subscribe — the standing-query SSE path.

        SSE headers go out with the first event (so admission rejections
        can still answer with their proper status), and the read side is
        watched for EOF from the start — a subscriber that disconnects
        while fully caught up (no event in flight) is detected and its
        checkout released without waiting for the next repair.
        """
        events = self.service.subscribe(request)
        eof_watch = asyncio.ensure_future(reader.read(1))
        started = False
        try:
            while not eof_watch.done():
                nxt = asyncio.ensure_future(anext(events))
                done, _pending = await asyncio.wait(
                    {eof_watch, nxt}, return_when=asyncio.FIRST_COMPLETED
                )
                if nxt not in done:
                    nxt.cancel()
                    break
                try:
                    name, payload = nxt.result()
                except StopAsyncIteration:
                    break
                except AdmissionError as error:
                    raise self._admission_http_error(error) from None
                except InvalidQueryError as error:
                    raise _HTTPError(400, error_payload("bad_request", str(error))) from None
                if not started:
                    await self._start_sse(writer)
                    started = True
                writer.write(format_sse(name, payload))
                await writer.drain()
        finally:
            eof_watch.cancel()
            # aclose() runs the generator's finally: listener detach,
            # checkout release (the standing query stays registered).
            await events.aclose()

    async def _update(self, payload, writer) -> None:
        """POST /v1/update — apply one atomic insert/delete batch."""
        try:
            ops = parse_update_batch(payload)
        except BadRequest as error:
            raise _HTTPError(400, error_payload("bad_request", error.message)) from None
        try:
            applied = await self.service.apply_updates(ops)
        except (InvalidDatasetError, InvalidQueryError) as error:
            raise _HTTPError(400, error_payload("bad_request", str(error))) from None
        await self._send_json(writer, 200, applied)

    # ------------------------------------------------------------------ #
    # response plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _head(status: int, content_type: str, length: int | None, extra: dict[str, str]) -> bytes:
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}"]
        lines.append(f"Content-Type: {content_type}")
        if length is not None:
            lines.append(f"Content-Length: {length}")
        for name, value in extra.items():
            lines.append(f"{name}: {value}")
        lines.append("Connection: close")
        return ("\r\n".join(lines) + "\r\n\r\n").encode()

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        extra: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()
        writer.write(self._head(status, "application/json", len(body), extra or {}))
        writer.write(body)
        await writer.drain()

    async def _send_raw(
        self, writer: asyncio.StreamWriter, status: int, body: bytes, content_type: str
    ) -> None:
        writer.write(self._head(status, content_type, len(body), {}))
        writer.write(body)
        await writer.drain()

    async def _start_sse(self, writer: asyncio.StreamWriter) -> None:
        writer.write(
            f"HTTP/1.1 200 OK\r\n{_SSE_HEADERS}Connection: close\r\n\r\n".encode()
        )
        await writer.drain()
