"""Admission control: per-tenant token budgets, concurrency caps, deadlines.

The serving tier sheds load *before* any engine work happens, so an
overloaded deployment degrades by rejecting cheaply instead of queueing
unboundedly:

* **per-tenant token buckets** — every tenant owns a
  :class:`TokenBucket` (capacity = burst allowance, refill rate = sustained
  request budget); a request that cannot afford its ``cost`` is rejected
  with ``429 over_budget`` and a ``retry_after`` hint computed from the
  refill rate.  Anonymous requests share one bucket, so an unidentified
  client cannot starve identified tenants.
* **concurrency cap** — at most ``max_concurrent`` admitted requests may be
  alive at once (a request stays alive until its *entire* lifecycle ends,
  background refinement included); beyond that the controller rejects with
  ``503 queue_full`` rather than queueing, which keeps time-to-first-answer
  bounded under overload.
* **deadline gate** — a request whose deadline is already expired (zero or
  negative ``deadline_ms``, or an instant in the past) is rejected with
  ``408 deadline_expired`` *here*, never started and abandoned mid-query.

Every admitted request is represented by a :class:`Checkout` that must be
released exactly once; the controller tracks the live set, so "no orphaned
checkout after a client disconnect" is a directly assertable invariant
(:attr:`AdmissionController.active` returns to zero).
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable

from ..exceptions import InvalidQueryError, ReproError

__all__ = [
    "AdmissionError",
    "TokenBucket",
    "Checkout",
    "AdmissionController",
]

#: Bucket key for requests without a tenant id.
_ANONYMOUS = "(anonymous)"


class AdmissionError(ReproError):
    """A request the controller refused to start.

    Parameters
    ----------
    reason:
        Machine-readable label: ``"over_budget"``, ``"queue_full"`` or
        ``"deadline_expired"``.
    message:
        Human-readable explanation.
    status:
        The HTTP status the front-end maps this rejection onto.
    retry_after:
        Seconds until a retry could plausibly succeed (token-bucket
        rejections only; ``None`` otherwise).
    """

    def __init__(
        self,
        reason: str,
        message: str,
        *,
        status: int,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.message = message
        self.status = int(status)
        self.retry_after = retry_after


class TokenBucket:
    """A standard token bucket: ``capacity`` burst, ``refill_rate`` tokens/s.

    Deterministic given the injected clock (tests pass a fake), lazy (tokens
    accrue on access, no timers), and never above ``capacity``.
    """

    def __init__(
        self,
        capacity: float,
        refill_rate: float,
        *,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity <= 0:
            raise InvalidQueryError("token bucket capacity must be positive")
        if refill_rate <= 0:
            raise InvalidQueryError("token bucket refill rate must be positive")
        self.capacity = float(capacity)
        self.refill_rate = float(refill_rate)
        self._clock = clock
        self._tokens = float(capacity)
        self._updated = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.capacity, self._tokens + elapsed * self.refill_rate)
        self._updated = now

    def tokens(self, now: float | None = None) -> float:
        """Current token balance (after lazy refill)."""
        self._refill(self._clock() if now is None else now)
        return self._tokens

    def try_take(self, cost: float, now: float | None = None) -> float | None:
        """Spend ``cost`` tokens; ``None`` on success, else seconds-to-afford.

        The failure value is the ``retry_after`` hint: how long the bucket
        needs (at its refill rate) before the same request could succeed.
        """
        now = self._clock() if now is None else now
        self._refill(now)
        if self._tokens >= cost:
            self._tokens -= cost
            return None
        deficit = cost - self._tokens
        return deficit / self.refill_rate

    def refund(self, amount: float) -> None:
        """Return tokens (e.g. for work rejected downstream); capped at capacity."""
        self._tokens = min(self.capacity, self._tokens + float(amount))


class Checkout:
    """One admitted request's hold on serving capacity.

    Created only by :meth:`AdmissionController.admit`; release exactly once
    when the request's lifecycle ends — normal completion, rejection
    downstream, *or client disconnect* (the satellite regression this PR
    fixes: abandoned refinements must not leak their slot).  ``release`` is
    idempotent, and the context-manager form releases on exit.
    """

    __slots__ = ("tenant", "cost", "admitted_at", "_controller", "_released")

    def __init__(self, controller: "AdmissionController", tenant: str, cost: float, admitted_at: float) -> None:
        self.tenant = tenant
        self.cost = cost
        self.admitted_at = admitted_at
        self._controller = controller
        self._released = False

    @property
    def released(self) -> bool:
        """Whether this checkout has already been released."""
        return self._released

    def release(self) -> None:
        """Free the concurrency slot (idempotent)."""
        if not self._released:
            self._released = True
            self._controller._release(self)

    def __enter__(self) -> "Checkout":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


class AdmissionController:
    """Decides, per request, whether the serving tier may start work.

    Parameters
    ----------
    max_concurrent:
        Cap on simultaneously-live checkouts (0 disables admission
        entirely — every request is rejected ``queue_full``).
    tenant_burst:
        Token-bucket capacity per tenant (burst allowance).
    tenant_rate:
        Token refill per second per tenant (sustained budget).
    tenant_overrides:
        Optional ``{tenant: (burst, rate)}`` map for tenants with
        non-default budgets.
    clock:
        Time source (monotonic seconds); inject a fake for deterministic
        tests.  Must be the same clock that produced any ``deadline_at``
        instants handed to :meth:`admit`.

    Thread-safe: the HTTP tier calls it from the event loop, benchmarks and
    tests from arbitrary threads.
    """

    def __init__(
        self,
        *,
        max_concurrent: int = 64,
        tenant_burst: float = 64.0,
        tenant_rate: float = 32.0,
        tenant_overrides: dict[str, tuple[float, float]] | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if max_concurrent < 0:
            raise InvalidQueryError("max_concurrent must be non-negative")
        self.max_concurrent = int(max_concurrent)
        self._tenant_burst = float(tenant_burst)
        self._tenant_rate = float(tenant_rate)
        self._overrides = dict(tenant_overrides or {})
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._live: set[Checkout] = set()
        self._lock = threading.Lock()
        #: Admission counters: admitted, released, and one ``rejected.*``
        #: per reason — exported under ``serve.admission.*`` by the service.
        self.counters: dict[str, int] = {
            "admitted": 0,
            "released": 0,
            "rejected.over_budget": 0,
            "rejected.queue_full": 0,
            "rejected.deadline_expired": 0,
        }

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def active(self) -> int:
        """Number of live (admitted, unreleased) checkouts."""
        with self._lock:
            return len(self._live)

    def live_checkouts(self) -> list[Checkout]:
        """Snapshot of the live checkouts (the orphan-detection probe)."""
        with self._lock:
            return list(self._live)

    def bucket(self, tenant: str | None) -> TokenBucket:
        """The (lazily created) token bucket budgeting ``tenant``."""
        key = _ANONYMOUS if tenant is None else tenant
        with self._lock:
            return self._bucket_locked(key)

    def _bucket_locked(self, key: str) -> TokenBucket:
        bucket = self._buckets.get(key)
        if bucket is None:
            burst, rate = self._overrides.get(key, (self._tenant_burst, self._tenant_rate))
            bucket = TokenBucket(burst, rate, clock=self._clock)
            self._buckets[key] = bucket
        return bucket

    def info(self) -> dict[str, float]:
        """Counters plus the live-checkout gauge, as one flat dict."""
        with self._lock:
            out: dict[str, float] = dict(self.counters)
            out["active"] = float(len(self._live))
            out["tenants"] = float(len(self._buckets))
            out["max_concurrent"] = float(self.max_concurrent)
            return out

    # ------------------------------------------------------------------ #
    # the decision
    # ------------------------------------------------------------------ #
    def admit(
        self,
        tenant: str | None = None,
        *,
        cost: float = 1.0,
        deadline_at: float | None = None,
    ) -> Checkout:
        """Admit one request or raise :class:`AdmissionError`.

        Checks run cheapest-first — deadline, concurrency, then budget — and
        the token spend happens only once the request is certain to be
        admitted, so rejected requests never drain their tenant's bucket.
        """
        now = self._clock()
        if deadline_at is not None and deadline_at <= now:
            with self._lock:
                self.counters["rejected.deadline_expired"] += 1
            raise AdmissionError(
                "deadline_expired",
                "request deadline already expired at admission",
                status=408,
            )
        key = _ANONYMOUS if tenant is None else tenant
        with self._lock:
            if len(self._live) >= self.max_concurrent:
                self.counters["rejected.queue_full"] += 1
                raise AdmissionError(
                    "queue_full",
                    f"serving capacity exhausted ({self.max_concurrent} in flight)",
                    status=503,
                )
            bucket = self._bucket_locked(key)
            retry_after = bucket.try_take(float(cost), now)
            if retry_after is not None:
                self.counters["rejected.over_budget"] += 1
                raise AdmissionError(
                    "over_budget",
                    f"tenant {key!r} is over its request budget",
                    status=429,
                    retry_after=math.ceil(retry_after * 1000.0) / 1000.0,
                )
            checkout = Checkout(self, key, float(cost), now)
            self._live.add(checkout)
            self.counters["admitted"] += 1
            return checkout

    def _release(self, checkout: Checkout) -> None:
        with self._lock:
            self._live.discard(checkout)
            self.counters["released"] += 1
