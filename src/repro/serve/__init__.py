"""repro.serve — the asyncio serving tier: estimate now, exact soon.

An HTTP front-end over :class:`~repro.engine.Engine` built entirely on the
standard library (``asyncio.start_server``; no web framework), turning the
repo's query stack into a servable system:

- :mod:`repro.serve.protocol` — the wire dialect: :func:`parse_request`,
  event payload builders, SSE framing.
- :mod:`repro.serve.admission` — load shedding before any engine work:
  per-tenant token budgets, a concurrency cap, and expired-deadline
  rejection, with an exactly-once :class:`Checkout` per admitted request.
- :mod:`repro.serve.service` — :class:`KSPRService`, the transport-free
  core: two-phase ``answer`` (sampled estimate in milliseconds, exact
  refinement pushed later, single-flight deduplicated, cancelled
  cooperatively when every client disconnects), anytime ``stream``
  (deadline-propagating partial results over the engine's checkpointing
  stream), and standing ``subscribe`` / ``apply_updates`` (live ``delta``
  push from :mod:`repro.live`, resumable after disconnects).
- :mod:`repro.serve.http` — :class:`ServeServer`, the SSE/JSON HTTP/1.1
  binding.
- :mod:`repro.serve.client` — :class:`ServeClient`, the matching asyncio
  client (incremental SSE decoding, used by the load benchmark).

Every request path is traced and measured through :mod:`repro.obs`; see
``docs/guides/serving.md`` for the operational walkthrough.
"""

from .admission import AdmissionController, AdmissionError, Checkout, TokenBucket
from .client import ServeClient, ServeHTTPError
from .http import ServeServer
from .protocol import (
    BadRequest,
    ServeRequest,
    applied_payload,
    approx_payload,
    delta_payload,
    error_payload,
    exact_payload,
    format_sse,
    parse_request,
    parse_sse,
    parse_update_batch,
    partial_payload,
    paused_payload,
)
from .service import KSPRService, ServeConfig, TwoPhaseAnswer

__all__ = [
    # protocol
    "BadRequest",
    "ServeRequest",
    "parse_request",
    "parse_update_batch",
    "approx_payload",
    "exact_payload",
    "partial_payload",
    "paused_payload",
    "delta_payload",
    "applied_payload",
    "error_payload",
    "format_sse",
    "parse_sse",
    # admission
    "AdmissionError",
    "TokenBucket",
    "Checkout",
    "AdmissionController",
    # service
    "ServeConfig",
    "TwoPhaseAnswer",
    "KSPRService",
    # http + client
    "ServeServer",
    "ServeClient",
    "ServeHTTPError",
]
