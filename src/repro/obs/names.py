"""The canonical metric-name catalogue: one dotted name per number.

Every metric the stack records — engine counters, per-query statistics,
serving-tier latencies — is declared here, once, before any call site may
use it.  The ``OBS001`` rule of the invariant linter (``tools.analyze``)
statically enforces the contract: a string literal passed to
``registry.counter(...)`` / ``gauge`` / ``histogram`` anywhere in
``repro`` must appear in this catalogue, and dynamic (f-string) names must
extend one of the families declared in :data:`DYNAMIC_METRIC_PREFIXES`.

The catalogue is the *naming* authority only; instruments still live in
:class:`~repro.obs.metrics.MetricsRegistry`, and the historical spellings
keep resolving through :data:`~repro.obs.metrics.LEGACY_ALIASES` (which
maps into this namespace — a consistency test asserts every alias target
is catalogued).

Organisation: serving-tier names are individual constants (call sites
reference them directly); the engine and per-query families are declared
as tuples because their call sites are table-driven (dict literals keyed
by these names feed ``registry.counter(name)`` loops).
"""

from __future__ import annotations

__all__ = [
    # serve.* constants
    "SERVE_TTFA_SECONDS",
    "SERVE_REFINE_SECONDS",
    "SERVE_ANSWERS_TOTAL",
    "SERVE_STREAMS_TOTAL",
    "SERVE_REFINEMENTS_STARTED",
    "SERVE_REFINEMENTS_COMPLETED",
    "SERVE_REFINEMENTS_CANCELLED",
    "SERVE_REFINEMENTS_DEDUPLICATED",
    "SERVE_HONESTY_CHECKED",
    "SERVE_HONESTY_VIOLATIONS",
    "SERVE_DISCONNECTS",
    "SERVE_CONNECTION_RESETS",
    "SERVE_ACTIVE",
    "SERVE_REJECTED_PREFIX",
    "SERVE_SUBSCRIPTIONS_TOTAL",
    "SERVE_SUBSCRIPTION_DELTAS",
    "SERVE_SUBSCRIPTION_RESUMES",
    "SERVE_UPDATES_TOTAL",
    # query.* constants referenced directly
    "LP_CONSTRAINTS",
    "QUERY_REGIONS",
    "QUERY_SECONDS_RESPONSE",
    "QUERY_SECONDS_CPU",
    "QUERY_SECONDS_INDEX_BUILD",
    "QUERY_SECONDS_PHASE_PREFIX",
    # families and the full catalogue
    "ENGINE_METRIC_NAMES",
    "QUERY_METRIC_NAMES",
    "SERVE_METRIC_NAMES",
    "SNAPSHOT_METRIC_NAMES",
    "LIVE_METRIC_NAMES",
    "DYNAMIC_METRIC_PREFIXES",
    "ALL_METRIC_NAMES",
]

# --------------------------------------------------------------------------- #
# serve.* — the asyncio serving tier (PR 7)
# --------------------------------------------------------------------------- #
#: Time-to-first-answer of two-phase requests (histogram, seconds).
SERVE_TTFA_SECONDS = "serve.ttfa.seconds"
#: Background exact-refinement latency (histogram, seconds).
SERVE_REFINE_SECONDS = "serve.refine.seconds"
#: Two-phase answers served (counter).
SERVE_ANSWERS_TOTAL = "serve.answers.total"
#: Anytime streams served (counter).
SERVE_STREAMS_TOTAL = "serve.streams.total"
#: Background refinements launched (counter).
SERVE_REFINEMENTS_STARTED = "serve.refinements.started.total"
#: Background refinements that finished exact (counter).
SERVE_REFINEMENTS_COMPLETED = "serve.refinements.completed.total"
#: Background refinements cancelled by disconnects (counter).
SERVE_REFINEMENTS_CANCELLED = "serve.refinements.cancelled.total"
#: Refinements collapsed onto an in-flight one (counter).
SERVE_REFINEMENTS_DEDUPLICATED = "serve.refinements.deduplicated.total"
#: Refined answers checked against their approx CI (counter).
SERVE_HONESTY_CHECKED = "serve.honesty.checked.total"
#: Exact impacts that fell outside their approx CI (counter).
SERVE_HONESTY_VIOLATIONS = "serve.honesty.violations.total"
#: Requests abandoned before their stream finished (counter).
SERVE_DISCONNECTS = "serve.disconnects.total"
#: Client connections dropped mid-response at the HTTP layer (counter).
SERVE_CONNECTION_RESETS = "serve.connection_resets.total"
#: Live admitted requests (gauge).
SERVE_ACTIVE = "serve.active"
#: Dynamic family: one counter per admission rejection reason
#: (``serve.rejected.<reason>.total``).
SERVE_REJECTED_PREFIX = "serve.rejected."
#: Standing SSE subscriptions admitted (counter).
SERVE_SUBSCRIPTIONS_TOTAL = "serve.subscriptions.total"
#: Delta/snapshot events pushed to standing subscribers (counter).
SERVE_SUBSCRIPTION_DELTAS = "serve.subscription.deltas.total"
#: Reconnects that resumed gap-free from an acked version (counter).
SERVE_SUBSCRIPTION_RESUMES = "serve.subscription.resumes.total"
#: Update batches applied through the serving tier (counter).
SERVE_UPDATES_TOTAL = "serve.updates.total"

SERVE_METRIC_NAMES: tuple[str, ...] = (
    SERVE_TTFA_SECONDS,
    SERVE_REFINE_SECONDS,
    SERVE_ANSWERS_TOTAL,
    SERVE_STREAMS_TOTAL,
    SERVE_REFINEMENTS_STARTED,
    SERVE_REFINEMENTS_COMPLETED,
    SERVE_REFINEMENTS_CANCELLED,
    SERVE_REFINEMENTS_DEDUPLICATED,
    SERVE_HONESTY_CHECKED,
    SERVE_HONESTY_VIOLATIONS,
    SERVE_DISCONNECTS,
    SERVE_CONNECTION_RESETS,
    SERVE_ACTIVE,
    SERVE_SUBSCRIPTIONS_TOTAL,
    SERVE_SUBSCRIPTION_DELTAS,
    SERVE_SUBSCRIPTION_RESUMES,
    SERVE_UPDATES_TOTAL,
)

# --------------------------------------------------------------------------- #
# query.* — per-query statistics (PR 6's canonicalisation of QueryStats)
# --------------------------------------------------------------------------- #
#: Constraint counts of LP feasibility/optimize probes (histogram).
LP_CONSTRAINTS = "query.lp.constraints"
#: Regions in the exact answer (counter).
QUERY_REGIONS = "query.regions"
#: End-to-end response seconds of one query (gauge).
QUERY_SECONDS_RESPONSE = "query.seconds.response"
#: CPU seconds of one query (gauge).
QUERY_SECONDS_CPU = "query.seconds.cpu"
#: Seconds spent building the R-tree index (gauge).
QUERY_SECONDS_INDEX_BUILD = "query.seconds.index_build"
#: Dynamic family: one gauge per recorded phase
#: (``query.seconds.phase.<name>``).
QUERY_SECONDS_PHASE_PREFIX = "query.seconds.phase."

QUERY_METRIC_NAMES: tuple[str, ...] = (
    LP_CONSTRAINTS,
    QUERY_REGIONS,
    QUERY_SECONDS_RESPONSE,
    QUERY_SECONDS_CPU,
    "query.seconds.io",
    QUERY_SECONDS_INDEX_BUILD,
    "query.processed_records",
    "query.competitor_records",
    "query.dominator_records",
    "query.celltree.nodes",
    "query.celltree.pruned_by_bounds",
    "query.celltree.reported_early",
    "query.batches",
    "query.lp.feasibility_calls",
    "query.lp.optimize_calls",
    "query.lp.total_constraints",
    "query.index.node_accesses",
    "query.space_bytes",
)

# --------------------------------------------------------------------------- #
# engine.* — the amortized serving engine (PR 1, canonicalised in PR 6)
# --------------------------------------------------------------------------- #
ENGINE_METRIC_NAMES: tuple[str, ...] = (
    "engine.queries",
    "engine.queries.cold",
    "engine.prepared.builds",
    "engine.prepared.reuses",
    "engine.prepared.entries",
    "engine.prepared.capacity",
    "engine.updates.inserts",
    "engine.updates.deletes",
    "engine.result_cache.hits",
    "engine.result_cache.misses",
    "engine.result_cache.insertions",
    "engine.result_cache.evictions",
    "engine.result_cache.invalidated",
    "engine.result_cache.retained",
    "engine.result_cache.adopted",
    "engine.result_cache.rekeyed",
    "engine.result_cache.entries",
    "engine.result_cache.capacity",
    "engine.stream.queries",
    "engine.stream.resumes",
    "engine.partial_store.saved",
    "engine.partial_store.resumes",
    "engine.partial_store.evictions",
    "engine.partial_store.invalidated",
    "engine.partial_store.entries",
    "engine.partial_store.capacity",
    "engine.seconds.cold",
    "engine.seconds.prepare",
    "engine.dataset.cardinality",
)

# --------------------------------------------------------------------------- #
# snapshot.* — the persistence tier (repro.snapshot, PR 9)
# --------------------------------------------------------------------------- #
SNAPSHOT_METRIC_NAMES: tuple[str, ...] = (
    "snapshot.commits",
    "snapshot.commits.deduped",
    "snapshot.checkouts",
    "snapshot.verify.failures",
    "snapshot.diffs",
    "snapshot.cache.saves",
    "snapshot.cache.loads",
    "snapshot.restore.engines",
    "snapshot.restore.replayed_updates",
    "snapshot.restore.fallbacks",
    "snapshot.store.snapshots",
    "snapshot.store.bytes",
)

# --------------------------------------------------------------------------- #
# live.* — standing queries under update streams (repro.live, PR 10)
# --------------------------------------------------------------------------- #
LIVE_METRIC_NAMES: tuple[str, ...] = (
    "live.standing.queries",
    "live.updates.total",
    "live.batches.total",
    "live.batch.updates",
    "live.repairs.total",
    "live.carried_forward.total",
    "live.refines.total",
    "live.deltas.total",
    "live.repair.seconds",
    "live.listener.errors.total",
)

# --------------------------------------------------------------------------- #
# the catalogue
# --------------------------------------------------------------------------- #
#: Declared dynamic families: an f-string metric name is legal iff its
#: static prefix extends one of these.
DYNAMIC_METRIC_PREFIXES: tuple[str, ...] = (
    SERVE_REJECTED_PREFIX,
    QUERY_SECONDS_PHASE_PREFIX,
)

#: Every canonical metric name (the OBS001 membership set).
ALL_METRIC_NAMES: frozenset[str] = (
    frozenset(SERVE_METRIC_NAMES)
    | frozenset(QUERY_METRIC_NAMES)
    | frozenset(ENGINE_METRIC_NAMES)
    | frozenset(SNAPSHOT_METRIC_NAMES)
    | frozenset(LIVE_METRIC_NAMES)
)
