"""Per-query EXPLAIN reports: span tree, phase timings, counters, histograms.

:func:`explain` turns any finished result (exact or approximate) into a
:class:`QueryProfile` — a report object that renders as indented text for
humans (``print(profile)``) and as a plain dict for machines
(:meth:`QueryProfile.as_dict`).  :meth:`Engine.profile
<repro.engine.engine.Engine.profile>` produces the richer variant: it runs
the query under a live :class:`~repro.obs.trace.Tracer` and
:class:`~repro.obs.metrics.MetricsRegistry`, so the report additionally
carries the span tree (cache decision, prepare/execute breakdown), the LP
constraint-count histogram, and the sampler's confidence-interval
trajectory when the ``sample`` method ran.

The report separates deterministic content from wall-clock content the
same way spans do: :meth:`QueryProfile.structure` is byte-stable across
runs and worker counts, while :meth:`QueryProfile.render` includes
timings and is for eyes, not diffs.
"""

from __future__ import annotations

from typing import Any

from .metrics import LP_CONSTRAINTS, Histogram, MetricsRegistry, stats_to_registry
from .trace import Tracer

__all__ = ["QueryProfile", "explain"]


def _bar(fraction: float, width: int = 20) -> str:
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


class QueryProfile:
    """Rendered view of one query: result stats + optional trace + metrics.

    Parameters
    ----------
    result:
        The finished :class:`~repro.core.result.KSPRResult` (or approximate
        result) the report describes.
    tracer:
        The tracer that observed the query, or ``None`` when built by
        :func:`explain` from a bare result.
    registry:
        Metrics registry for the query; defaults to the canonical lift of
        ``result.stats`` via :func:`~repro.obs.metrics.stats_to_registry`.
    """

    def __init__(
        self,
        result,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.result = result
        self.tracer = tracer
        if registry is None:
            registry = stats_to_registry(result.stats, regions=self._region_count())
        self.registry = registry

    def _region_count(self) -> int | None:
        try:
            return len(self.result)
        except TypeError:  # pragma: no cover - defensive
            return None

    # -- deterministic projection -----------------------------------------
    def structure(self) -> str:
        """Byte-stable span structure (names, nesting, deterministic attrs).

        Empty string when no tracer observed the query.  This is the text
        the determinism tests compare across repeated runs and across
        ``workers=1`` vs ``workers=4``.
        """
        return self.tracer.structure() if self.tracer is not None else ""

    # -- machine form ------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """The full report as a plain dict (JSON-serialisable modulo numpy)."""
        stats = self.result.stats
        return {
            "algorithm": stats.algorithm,
            "regions": self._region_count(),
            "metrics": self.registry.snapshot(),
            "phase_seconds": dict(stats.phase_seconds),
            "structure": self.structure(),
            "spans": self.tracer.as_dicts() if self.tracer is not None else [],
        }

    # -- human form --------------------------------------------------------
    def render(self) -> str:
        """Multi-section text report: span tree, phases, counters, histograms."""
        stats = self.result.stats
        lines: list[str] = [f"QUERY PROFILE — {stats.algorithm}"]
        regions = self._region_count()
        if regions is not None:
            lines.append(f"  regions: {regions}")
        lines.append(
            f"  wall {stats.response_seconds * 1e3:.2f} ms · cpu {stats.cpu_seconds * 1e3:.2f} ms"
        )

        if self.tracer is not None and self.tracer.spans:
            lines.append("")
            lines.append("SPAN TREE")
            depth: dict[int, int] = {}
            for span in self.tracer.spans:
                level = 0 if span.parent_id is None else depth.get(span.parent_id, 0) + 1
                depth[span.span_id] = level
                payload = {**span.attributes, **span.volatile}
                rendered = " ".join(f"{key}={payload[key]}" for key in sorted(payload))
                lines.append(
                    "  " + "  " * level
                    + f"{span.name} ({span.duration * 1e3:.2f} ms)"
                    + (f" {rendered}" if rendered else "")
                )

        if stats.phase_seconds:
            total = sum(stats.phase_seconds.values()) or 1.0
            lines.append("")
            lines.append("PHASES")
            for phase, seconds in stats.phase_seconds.items():
                lines.append(
                    f"  {phase:<14} {seconds * 1e3:9.2f} ms  {_bar(seconds / total)}"
                )

        lines.append("")
        lines.append("COUNTERS")
        lines.append(
            f"  records processed/competitors/dominators: "
            f"{stats.processed_records}/{stats.competitor_records}/{stats.dominator_records}"
        )
        lines.append(
            f"  celltree nodes {stats.celltree_nodes} · pruned {stats.cells_pruned_by_bounds}"
            f" · early {stats.cells_reported_early}"
        )
        lines.append(
            f"  LP feasibility {stats.lp.feasibility_calls} · optimize {stats.lp.optimize_calls}"
            f" · constraints {stats.lp.total_constraints}"
        )

        histogram = self.registry._instruments.get(LP_CONSTRAINTS)
        if isinstance(histogram, Histogram) and histogram.total:
            lines.append("")
            lines.append("LP CONSTRAINT HISTOGRAM")
            peak = max(histogram.counts) or 1
            for bound, count in zip(histogram.bounds, histogram.counts):
                if count == 0:
                    continue
                label = "+inf" if bound == float("inf") else f"<= {bound:g}"
                lines.append(f"  {label:>8}  {count:6d}  {_bar(count / peak)}")

        trajectory = self._sampler_trajectory()
        if trajectory:
            lines.append("")
            lines.append("SAMPLER CI TRAJECTORY")
            for fields in trajectory:
                lines.append(
                    f"  look {fields.get('look', '?'):>3}: samples {fields.get('samples', '?'):>8}"
                    f"  hits {fields.get('hits', '?'):>8}"
                    f"  ci [{fields.get('lower', float('nan')):.5f}, "
                    f"{fields.get('upper', float('nan')):.5f}]"
                )
        return "\n".join(lines)

    def _sampler_trajectory(self) -> list[dict[str, Any]]:
        """Per-look sampler events (``approx.look``), in recorded order."""
        if self.tracer is None:
            return []
        trajectory: list[dict[str, Any]] = []
        for span in self.tracer.spans:
            for event in span.events:
                if event.name == "approx.look":
                    trajectory.append(dict(event.fields))
        return trajectory

    def __str__(self) -> str:
        return self.render()


def explain(result, *, tracer: Tracer | None = None) -> QueryProfile:
    """Build a :class:`QueryProfile` report for a finished query result.

    Works on any result carrying ``.stats`` — exact, partial, or
    approximate.  Pass the tracer that observed the query to include the
    span tree and sampler trajectory; without one, the report covers phase
    timings, counters and the canonical metrics view only.
    """
    return QueryProfile(result, tracer=tracer)
