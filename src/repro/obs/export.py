"""Exporters for traces and metrics: JSON-lines, Prometheus v0, chrome://tracing.

Three wire formats, all derived from the same in-memory objects:

- :func:`trace_to_jsonl` / :func:`parse_trace_jsonl` — one JSON object per
  span, schema-validated on the way back in, so dumps round-trip exactly.
- :func:`registry_to_prometheus` / :func:`parse_prometheus` — the
  Prometheus text exposition format (version 0.0.4): ``# HELP`` /
  ``# TYPE`` comments, ``_bucket{le="…"}`` cumulative histogram series,
  ``_sum`` and ``_count``.  Dotted canonical names are mangled to the
  ``repro_``-prefixed underscore form Prometheus requires.
- :func:`trace_to_chrome` — the Trace Event Format understood by
  ``chrome://tracing`` and Perfetto: complete (``"ph": "X"``) events with
  microsecond timestamps, span attributes in ``args``.

Parsers exist for the first two so tests can assert lossless round-trips;
the chrome format is write-only (its consumer is the browser).
"""

from __future__ import annotations

import json
import math
import re
from typing import Any

from .metrics import Histogram, MetricsRegistry
from .trace import Tracer

__all__ = [
    "trace_to_jsonl",
    "parse_trace_jsonl",
    "registry_to_prometheus",
    "parse_prometheus",
    "trace_to_chrome",
]

#: Required span-record keys and the types accepted for each.
_SPAN_SCHEMA: dict[str, tuple[type, ...]] = {
    "span_id": (int,),
    "parent_id": (int, type(None)),
    "name": (str,),
    "detail": (bool,),
    "start": (int, float),
    "end": (int, float, type(None)),
    "attributes": (dict,),
    "volatile": (dict,),
    "events": (list,),
}

_EVENT_SCHEMA: dict[str, tuple[type, ...]] = {
    "name": (str,),
    "elapsed": (int, float),
    "fields": (dict,),
}


def trace_to_jsonl(tracer: Tracer) -> str:
    """Serialise every span as one JSON object per line (creation order)."""
    return "\n".join(
        json.dumps(record, sort_keys=True, default=_jsonable) for record in tracer.as_dicts()
    )


def _jsonable(value: Any) -> Any:
    """Fallback serialiser: numpy scalars and other reprs degrade gracefully."""
    if hasattr(value, "item"):
        return value.item()
    return repr(value)


def parse_trace_jsonl(text: str) -> list[dict[str, Any]]:
    """Parse and schema-validate a JSON-lines trace dump.

    Raises ``ValueError`` on malformed JSON, missing/extra keys, wrong
    types, or a parent reference to an unknown span — so a passing parse
    certifies the dump is a well-formed span forest.
    """
    records: list[dict[str, Any]] = []
    seen_ids: set[int] = set()
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"trace line {line_number}: invalid JSON ({error})") from error
        if not isinstance(record, dict):
            raise ValueError(f"trace line {line_number}: expected object, got {type(record).__name__}")
        missing = set(_SPAN_SCHEMA) - set(record)
        extra = set(record) - set(_SPAN_SCHEMA)
        if missing or extra:
            raise ValueError(
                f"trace line {line_number}: missing keys {sorted(missing)}, extra keys {sorted(extra)}"
            )
        for key, kinds in _SPAN_SCHEMA.items():
            if not isinstance(record[key], kinds):
                raise ValueError(
                    f"trace line {line_number}: key {key!r} has type "
                    f"{type(record[key]).__name__}, expected one of {[k.__name__ for k in kinds]}"
                )
        for event in record["events"]:
            if not isinstance(event, dict) or set(event) != set(_EVENT_SCHEMA):
                raise ValueError(f"trace line {line_number}: malformed event {event!r}")
            for key, kinds in _EVENT_SCHEMA.items():
                if not isinstance(event[key], kinds):
                    raise ValueError(f"trace line {line_number}: event key {key!r} has wrong type")
        parent = record["parent_id"]
        if parent is not None and parent not in seen_ids:
            raise ValueError(
                f"trace line {line_number}: parent_id {parent} does not reference an earlier span"
            )
        seen_ids.add(record["span_id"])
        records.append(record)
    return records


def _prometheus_name(name: str) -> str:
    """Mangle a dotted canonical name into a legal Prometheus metric name."""
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def registry_to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus v0 text exposition format."""
    lines: list[str] = []
    for instrument in registry.instruments():
        name = _prometheus_name(instrument.name)
        if instrument.help:
            lines.append(f"# HELP {name} {instrument.help}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        if isinstance(instrument, Histogram):
            running = 0
            for bound, count in zip(instrument.bounds, instrument.counts):
                running += count
                label = "+Inf" if bound == math.inf else _format_value(float(bound))
                lines.append(f'{name}_bucket{{le="{label}"}} {running}')
            lines.append(f"{name}_sum {_format_value(float(instrument.sum))}")
            lines.append(f"{name}_count {instrument.total}")
        else:
            lines.append(f"{name} {_format_value(float(instrument.value))}")
    return "\n".join(lines) + "\n"


_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse Prometheus text format into ``{sample name[{labels}]: value}``.

    Validates every non-comment line against the exposition grammar and
    returns each sample keyed by its full name (labels included verbatim),
    raising ``ValueError`` on any malformed line — the round-trip test
    feeds :func:`registry_to_prometheus` output straight back through this.
    """
    samples: dict[str, float] = {}
    typed: set[str] = set()
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in {"counter", "gauge", "histogram"}:
                raise ValueError(f"prometheus line {line_number}: malformed TYPE comment")
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"prometheus line {line_number}: malformed sample {line!r}")
        raw = match.group("value")
        try:
            value = float(raw)
        except ValueError as error:
            raise ValueError(f"prometheus line {line_number}: bad value {raw!r}") from error
        key = match.group("name")
        if match.group("labels"):
            key += "{" + match.group("labels") + "}"
        if key in samples:
            raise ValueError(f"prometheus line {line_number}: duplicate sample {key!r}")
        samples[key] = value
    if not typed:
        raise ValueError("prometheus exposition contains no TYPE comments")
    return samples


def trace_to_chrome(tracer: Tracer, *, pid: int = 0) -> dict[str, Any]:
    """Convert a trace into the ``chrome://tracing`` Trace Event Format.

    Every finished span becomes one complete event (``"ph": "X"``) with
    microsecond ``ts``/``dur`` relative to the tracer epoch; span events
    become instant events (``"ph": "i"``).  Serialise with ``json.dump``
    and load the file in ``chrome://tracing`` or Perfetto.
    """
    events: list[dict[str, Any]] = []
    for record in tracer.as_dicts():
        end = record["end"] if record["end"] is not None else record["start"]
        events.append(
            {
                "ph": "X",
                "name": record["name"],
                "cat": "repro",
                "ts": record["start"] * 1e6,
                "dur": (end - record["start"]) * 1e6,
                "pid": pid,
                "tid": 0,
                "args": {**record["attributes"], **record["volatile"]},
            }
        )
        for event in record["events"]:
            events.append(
                {
                    "ph": "i",
                    "name": event["name"],
                    "cat": "repro",
                    "ts": event["elapsed"] * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "s": "t",
                    "args": dict(event["fields"]),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
