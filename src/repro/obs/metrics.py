"""Unified metrics registry — one canonical name per number.

Before this module the same quantity appeared under several spellings:
``EngineStats.cache_hits``, ``ResultCache.info()["hits"]`` and
``MeasuredRun.metrics["response_seconds"]`` all travelled on private dicts
with no shared schema.  The :class:`MetricsRegistry` gives every counter a
single dotted canonical name (``engine.cache.hits``,
``query.lp.feasibility_calls``, …), exposes the three standard instrument
kinds — :class:`Counter`, :class:`Gauge`, :class:`Histogram` — and feeds
the exporters in :mod:`repro.obs.export`.

Histograms carry **fixed bucket bounds** chosen at construction (default:
powers of two), so merging histograms from parallel shards is exact — the
merged bucket counts equal the single-process run's counts, mirroring the
ordered-commit determinism contract of :mod:`repro.parallel`.

Like the tracer, the registry is distributed through a context variable:
hot paths call :func:`active_registry` and skip all work when it returns
``None`` (the default), so the disabled overhead is one context-variable
read per LP probe.

:data:`LEGACY_ALIASES` maps every pre-existing spelling from
``EngineStats``/cache dicts/``MeasuredRun`` to its canonical name, and
:func:`stats_to_registry` lifts a :class:`~repro.core.result.QueryStats`
into canonical form — this is what makes ``MeasuredRun`` a *view* over the
registry rather than a fourth naming scheme.
"""

from __future__ import annotations

import bisect
import contextlib
import math
import threading
from contextvars import ContextVar
from typing import Any, Iterator, Mapping

from .names import (
    LP_CONSTRAINTS,
    QUERY_REGIONS,
    QUERY_SECONDS_CPU,
    QUERY_SECONDS_INDEX_BUILD,
    QUERY_SECONDS_PHASE_PREFIX,
    QUERY_SECONDS_RESPONSE,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LP_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "LP_CONSTRAINTS",
    "LEGACY_ALIASES",
    "active_registry",
    "use_registry",
    "canonical_name",
    "stats_to_registry",
]

#: Upper bucket bounds (inclusive) for LP constraint-count histograms.
#: Powers of two up to 4096 plus +inf: fixed for every histogram instance,
#: so shard merges are exact.
DEFAULT_LP_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, math.inf)

# ``LP_CONSTRAINTS`` (the canonical histogram name for LP probe constraint
# counts) is defined in — and re-exported from — the metric-name catalogue,
# :mod:`repro.obs.names`, alongside every other canonical name.

#: Upper bucket bounds (inclusive, seconds) for request-latency histograms —
#: powers of two from 0.25ms to ~8s plus +inf.  Fixed like the LP buckets so
#: latency histograms recorded by concurrent serving tasks (or shipped back
#: from workers) merge exactly; used by ``repro.serve`` for time-to-first-
#: answer and refinement-latency distributions.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = tuple(
    0.00025 * 2.0 ** exponent for exponent in range(16)
) + (math.inf,)

#: Every legacy spelling -> its canonical dotted name.  ``EngineStats``
#: fields, ``ResultCache.info()`` / ``PartialStore.info()`` keys and
#: ``MeasuredRun`` metric keys all resolve here.
LEGACY_ALIASES: dict[str, str] = {
    # EngineStats fields.
    "queries": "engine.queries",
    "cache_hits": "engine.result_cache.hits",
    "cold_queries": "engine.queries.cold",
    "prepared_builds": "engine.prepared.builds",
    "prepared_reuses": "engine.prepared.reuses",
    "inserts": "engine.updates.inserts",
    "deletes": "engine.updates.deletes",
    "entries_invalidated": "engine.result_cache.invalidated",
    "entries_retained": "engine.result_cache.retained",
    "adopted_results": "engine.result_cache.adopted",
    "stream_queries": "engine.stream.queries",
    "stream_resumes": "engine.stream.resumes",
    "partials_saved": "engine.partial_store.saved",
    "partials_invalidated": "engine.partial_store.invalidated",
    "cold_seconds": "engine.seconds.cold",
    "prepare_seconds": "engine.seconds.prepare",
    # ResultCache.info() keys (cache-local counters).
    "hits": "engine.result_cache.hits",
    "misses": "engine.result_cache.misses",
    "insertions": "engine.result_cache.insertions",
    "evictions": "engine.result_cache.evictions",
    "invalidated": "engine.result_cache.invalidated",
    "rekeyed": "engine.result_cache.rekeyed",
    "entries": "engine.result_cache.entries",
    "capacity": "engine.result_cache.capacity",
    # MeasuredRun / QueryStats spellings.
    "response_seconds": "query.seconds.response",
    "cpu_seconds": "query.seconds.cpu",
    "io_seconds": "query.seconds.io",
    "processed_records": "query.processed_records",
    "competitor_records": "query.competitor_records",
    "dominator_records": "query.dominator_records",
    "celltree_nodes": "query.celltree.nodes",
    "cells_pruned_by_bounds": "query.celltree.pruned_by_bounds",
    "cells_reported_early": "query.celltree.reported_early",
    "batches": "query.batches",
    "lp_feasibility_calls": "query.lp.feasibility_calls",
    "lp_optimize_calls": "query.lp.optimize_calls",
    "lp_total_constraints": "query.lp.total_constraints",
    "index_node_accesses": "query.index.node_accesses",
    "index_build_seconds": "query.seconds.index_build",
    "space_bytes": "query.space_bytes",
    "regions": "query.regions",
}


def canonical_name(name: str) -> str:
    """Resolve *name* through :data:`LEGACY_ALIASES` (canonical names pass through)."""
    return LEGACY_ALIASES.get(name, name)


class Counter:
    """Monotonically increasing numeric instrument."""

    __slots__ = ("name", "help", "value")

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (amount={amount})")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Fold another counter's total into this one."""
        self.value += other.value


class Gauge:
    """Point-in-time numeric instrument (capacities, current sizes, seconds)."""

    __slots__ = ("name", "help", "value")

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: float = 0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge in (last-writer-wins, standard gauge semantics)."""
        self.value = other.value


class Histogram:
    """Cumulative-bucket histogram with fixed bounds, so merges are exact.

    Bucket bounds are upper-inclusive and must end with ``+inf``; two
    histograms merge only when their bounds are identical, which keeps the
    merged distribution byte-equal to a single-process run's.
    """

    __slots__ = ("name", "help", "bounds", "counts", "total", "sum")

    kind = "histogram"

    def __init__(self, name: str, help: str = "", bounds: tuple[float, ...] = DEFAULT_LP_BUCKETS):
        if not bounds or bounds[-1] != math.inf:
            raise ValueError("histogram bounds must be non-empty and end with +inf")
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted")
        self.name = name
        self.help = help
        self.bounds = tuple(bounds)
        self.counts = [0] * len(bounds)
        self.total = 0
        self.sum: float = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with identical bounds into this one."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bounds differ "
                f"({other.bounds} vs {self.bounds})"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum += other.sum

    def merge_counts(self, counts: list[int], total: int, value_sum: float) -> None:
        """Fold raw bucket counts (e.g. shipped back from a worker process)."""
        if len(counts) != len(self.counts):
            raise ValueError(f"histogram {self.name!r}: bucket count mismatch")
        for index, count in enumerate(counts):
            self.counts[index] += count
        self.total += total
        self.sum += value_sum

    def as_dict(self) -> dict[str, Any]:
        """Bucket bounds, per-bucket counts, total count and value sum."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Named collection of instruments with get-or-create accessors.

    Thread-safe: instrument creation and snapshots take an internal lock
    (individual ``inc``/``observe`` calls rely on the instruments being
    accessed under the GIL and are registered once).  Registries merge
    exactly — counters add, gauges last-write, histograms add per fixed
    bucket — which is what makes shard-merged metrics equal serial ones.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs):
        name = canonical_name(name)
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, help, **kwargs)
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {instrument.kind}, "
                    f"requested {cls.kind}"
                )
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter *name* (legacy spellings are canonicalised)."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge *name*."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", bounds: tuple[float, ...] = DEFAULT_LP_BUCKETS
    ) -> Histogram:
        """Get or create the histogram *name* with fixed *bounds*."""
        return self._get_or_create(Histogram, name, help, bounds=bounds)

    def instruments(self) -> list[Counter | Gauge | Histogram]:
        """All instruments sorted by name (stable exporter order)."""
        with self._lock:
            return [self._instruments[name] for name in sorted(self._instruments)]

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold every instrument of *other* into this registry."""
        for instrument in other.instruments():
            mine = self._get_or_create(type(instrument), instrument.name, instrument.help)
            mine.merge(instrument)

    def snapshot(self) -> dict[str, Any]:
        """Flat ``{canonical name: value}`` dict; histograms expand to sub-keys.

        A histogram named ``h`` contributes ``h.count``, ``h.sum`` and one
        ``h.bucket.<bound>`` per bucket (cumulative, Prometheus-style).
        """
        out: dict[str, Any] = {}
        for instrument in self.instruments():
            if isinstance(instrument, Histogram):
                running = 0
                for bound, count in zip(instrument.bounds, instrument.counts):
                    running += count
                    label = "inf" if bound == math.inf else f"{bound:g}"
                    out[f"{instrument.name}.bucket.{label}"] = running
                out[f"{instrument.name}.count"] = instrument.total
                out[f"{instrument.name}.sum"] = instrument.sum
            else:
                out[instrument.name] = instrument.value
        return out


#: Registry active in the current execution context (None = metrics off).
_REGISTRY: ContextVar[MetricsRegistry | None] = ContextVar("repro_obs_registry", default=None)


def active_registry() -> MetricsRegistry | None:
    """The registry installed for the current context, or ``None``."""
    return _REGISTRY.get()


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install *registry* as :func:`active_registry` for the enclosed block."""
    token = _REGISTRY.set(registry)
    try:
        yield registry
    finally:
        _REGISTRY.reset(token)


def stats_to_registry(
    stats, *, regions: int | None = None, registry: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Lift a :class:`~repro.core.result.QueryStats` into canonical metrics.

    Counters become ``query.*`` counters, timings become gauges (including
    one ``query.seconds.phase.<name>`` gauge per recorded phase), and the
    LP aggregate lands on the same canonical names the live instrumentation
    uses — so a :class:`~repro.experiments.metrics.MeasuredRun` built from
    a result is a *view* over this registry rather than a separate schema.
    """
    registry = registry if registry is not None else MetricsRegistry()
    counters: Mapping[str, float] = {
        "query.processed_records": stats.processed_records,
        "query.competitor_records": stats.competitor_records,
        "query.dominator_records": stats.dominator_records,
        "query.celltree.nodes": stats.celltree_nodes,
        "query.celltree.pruned_by_bounds": stats.cells_pruned_by_bounds,
        "query.celltree.reported_early": stats.cells_reported_early,
        "query.batches": stats.batches,
        "query.lp.feasibility_calls": stats.lp.feasibility_calls,
        "query.lp.optimize_calls": stats.lp.optimize_calls,
        "query.lp.total_constraints": stats.lp.total_constraints,
        "query.index.node_accesses": stats.index_node_accesses,
        "query.space_bytes": stats.space_bytes,
    }
    for name, value in counters.items():
        registry.counter(name).inc(value)
    if regions is not None:
        registry.counter(QUERY_REGIONS).inc(regions)
    registry.gauge(QUERY_SECONDS_RESPONSE).set(stats.response_seconds)
    registry.gauge(QUERY_SECONDS_CPU).set(stats.cpu_seconds)
    registry.gauge(QUERY_SECONDS_INDEX_BUILD).set(stats.index_build_seconds)
    for phase, seconds in stats.phase_seconds.items():
        registry.gauge(f"{QUERY_SECONDS_PHASE_PREFIX}{phase}").set(seconds)
    return registry
