"""repro.obs — structured tracing, unified metrics, and query EXPLAIN.

The observability layer for the kSPR stack:

- :mod:`repro.obs.trace` — span-based tracer (context-manager + decorator
  API, contextvar distribution, no-op :class:`NullTracer` default).
- :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` registry with one canonical name per number and
  fixed histogram buckets so shard merges are exact.
- :mod:`repro.obs.export` — JSON-lines traces, Prometheus v0 text,
  ``chrome://tracing`` event files.
- :mod:`repro.obs.profile` — :func:`explain` / :class:`QueryProfile`
  per-query reports (text and dict).

Import-light by design: this package depends on the standard library only,
so every subsystem (geometry, core, engine, parallel, stream, approx) can
instrument itself without import cycles.
"""

from .export import (
    parse_prometheus,
    parse_trace_jsonl,
    registry_to_prometheus,
    trace_to_chrome,
    trace_to_jsonl,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_LP_BUCKETS,
    LEGACY_ALIASES,
    LP_CONSTRAINTS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    canonical_name,
    stats_to_registry,
    use_registry,
)
from .profile import QueryProfile, explain
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanEvent,
    Tracer,
    current_tracer,
    traced,
    use_tracer,
)

__all__ = [
    # trace
    "Span",
    "SpanEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "use_tracer",
    "traced",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LP_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "LP_CONSTRAINTS",
    "LEGACY_ALIASES",
    "active_registry",
    "use_registry",
    "canonical_name",
    "stats_to_registry",
    # export
    "trace_to_jsonl",
    "parse_trace_jsonl",
    "registry_to_prometheus",
    "parse_prometheus",
    "trace_to_chrome",
    # profile
    "QueryProfile",
    "explain",
]
