"""Span-based tracing for kSPR query execution.

A :class:`Tracer` records a tree of :class:`Span` objects — named, nested,
monotonic-clock-timed intervals — describing what a query did: engine
cache lookups, prepared-state builds, CellTree tick progress, LP probes,
shard commits, stream pauses.  Instrumented code never takes a tracer
parameter; it asks :func:`current_tracer` (a :mod:`contextvars` lookup, so
concurrent queries in a :class:`~repro.engine.batch.QueryBatch` or across
``asyncio`` tasks never see each other's spans) and the default is the
shared :data:`NULL_TRACER`, whose spans are a single reusable no-op object.
The disabled path therefore costs one context-variable read plus one
attribute check — negligible against an LP solve or a CellTree insertion.

Spans separate **deterministic** payload from **wall-clock** payload:

- ``attributes`` (via :meth:`Span.set`) hold counters and labels that must
  be byte-identical across repeated runs and across worker counts —
  processed records, LP call totals, cache decisions.
- ``volatile`` (via :meth:`Span.note`) holds anything timing- or
  environment-dependent — elapsed seconds, worker counts, algorithm
  banners that embed a pool size.
- ``events`` (via :meth:`Span.event`) are point-in-time progress marks
  (one every *N* CellTree ticks, one per sampler look) and are excluded
  from the deterministic projection because their cadence may depend on
  scheduling.

:meth:`Tracer.structure` renders names, nesting, and ``attributes`` only —
the projection the determinism tests snapshot byte-for-byte.
"""

from __future__ import annotations

import contextlib
import functools
import threading
import time
from contextvars import ContextVar
from typing import Any, Callable, Iterator

__all__ = [
    "Span",
    "SpanEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "use_tracer",
    "traced",
]


class SpanEvent:
    """A point-in-time mark attached to a span.

    Parameters
    ----------
    name:
        Event label, e.g. ``"cta.progress"``.
    elapsed:
        Seconds since the owning tracer's epoch (monotonic clock).
    fields:
        Free-form payload; treated as volatile (never part of the
        deterministic projection).
    """

    __slots__ = ("name", "elapsed", "fields")

    def __init__(self, name: str, elapsed: float, fields: dict[str, Any]):
        self.name = name
        self.elapsed = elapsed
        self.fields = fields

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict form used by the exporters."""
        return {"name": self.name, "elapsed": self.elapsed, "fields": dict(self.fields)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanEvent({self.name!r}, elapsed={self.elapsed:.6f}, fields={self.fields!r})"


class Span:
    """One named, timed interval in a trace tree.

    Created through :meth:`Tracer.span`; usable as a context manager.  The
    three payload channels (``attributes`` / ``volatile`` / ``events``) are
    documented in the module docstring — keeping them separate is what lets
    the determinism tests assert byte-stable structure while wall-clock
    readings still flow to the exporters.
    """

    __slots__ = (
        "tracer",
        "name",
        "span_id",
        "parent_id",
        "detail",
        "attributes",
        "volatile",
        "events",
        "start",
        "end",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        detail: bool = False,
    ):
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        #: Detail spans describe scheduling-dependent structure (e.g. one
        #: span per parallel shard — shard counts vary with the worker
        #: count), so :meth:`Tracer.structure` excludes them.
        self.detail = detail
        self.attributes: dict[str, Any] = {}
        self.volatile: dict[str, Any] = {}
        self.events: list[SpanEvent] = []
        self.start = time.perf_counter()
        self.end: float | None = None
        self._token = None

    # -- payload -----------------------------------------------------------
    def set(self, **attributes: Any) -> "Span":
        """Attach deterministic attributes (counters, labels) to the span."""
        self.attributes.update(attributes)
        return self

    def note(self, **fields: Any) -> "Span":
        """Attach volatile (timing/environment-dependent) fields to the span."""
        self.volatile.update(fields)
        return self

    def event(self, name: str, **fields: Any) -> None:
        """Record a point-in-time event under this span."""
        elapsed = time.perf_counter() - self.tracer.epoch
        self.events.append(SpanEvent(name, elapsed, fields))

    # -- lifecycle ---------------------------------------------------------
    @property
    def duration(self) -> float:
        """Elapsed seconds (to *now* while the span is still open)."""
        reference = self.end if self.end is not None else time.perf_counter()
        return reference - self.start

    def finish(self) -> None:
        """Close the span (idempotent); records the end timestamp."""
        if self.end is None:
            self.end = time.perf_counter()

    def __enter__(self) -> "Span":
        self._token = _ACTIVE_SPAN.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()
        if self._token is not None:
            _ACTIVE_SPAN.reset(self._token)
            self._token = None

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict form used by the exporters."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "detail": self.detail,
            "start": self.start - self.tracer.epoch,
            "end": (self.end - self.tracer.epoch) if self.end is not None else None,
            "attributes": dict(self.attributes),
            "volatile": dict(self.volatile),
            "events": [event.as_dict() for event in self.events],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end is None else f"{self.duration * 1e3:.3f}ms"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class _NullSpan:
    """Reusable no-op span handed out by :class:`NullTracer`.

    Every mutator returns immediately, so instrumented code pays only the
    method-dispatch cost when tracing is disabled.  A single module-level
    instance is shared by all disabled call sites.
    """

    __slots__ = ()

    def set(self, **attributes: Any) -> "_NullSpan":
        """No-op; returns self for chaining parity with :class:`Span`."""
        return self

    def note(self, **fields: Any) -> "_NullSpan":
        """No-op; returns self for chaining parity with :class:`Span`."""
        return self

    def event(self, name: str, **fields: Any) -> None:
        """No-op."""

    def finish(self) -> None:
        """No-op."""

    @property
    def duration(self) -> float:
        """Always ``0.0``."""
        return 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()

#: Innermost open span in the current execution context (None at top level).
_ACTIVE_SPAN: ContextVar[Span | None] = ContextVar("repro_obs_active_span", default=None)


class Tracer:
    """Collects spans for one logical unit of work (typically one query).

    Thread-safe: span-id allocation and registration take an internal lock,
    so a :class:`~repro.engine.batch.QueryBatch` serving from worker
    threads can share one tracer.  Span *nesting*, however, follows
    :mod:`contextvars`, so each thread/task nests only its own spans.

    Span ids are allocated sequentially in creation order; on a
    single-threaded profile run the id sequence — and therefore
    :meth:`structure` — is fully deterministic.
    """

    enabled = True

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        self._next_id = 0

    def __repr__(self) -> str:
        return f"{type(self).__name__}(spans={len(self.spans)})"

    def span(self, name: str, detail: bool = False, **attributes: Any):
        """Open a new child span of the context's active span.

        Returns the :class:`Span` for use as a context manager; keyword
        arguments become deterministic attributes.  ``detail=True`` marks
        the span as scheduling-dependent structure, excluded from
        :meth:`structure`.
        """
        parent = _ACTIVE_SPAN.get()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            created = Span(
                self, name, span_id,
                parent.span_id if parent is not None else None,
                detail=detail,
            )
            self.spans.append(created)
        if attributes:
            created.set(**attributes)
        return created

    def event(self, name: str, **fields: Any) -> None:
        """Record an event on the context's active span (dropped at top level)."""
        active = _ACTIVE_SPAN.get()
        if active is not None:
            active.event(name, **fields)

    def clear(self) -> None:
        """Drop all recorded spans and restart the id sequence."""
        with self._lock:
            self.spans.clear()
            self._next_id = 0
            self.epoch = time.perf_counter()

    # -- deterministic projection -----------------------------------------
    def structure(self) -> str:
        """Render names, nesting, and deterministic attributes as stable text.

        One line per span in creation order, indented by tree depth, with
        attributes sorted by key: the byte-stable projection asserted by
        the determinism tests.  ``volatile`` fields, ``events``, and
        ``detail`` spans (with their subtrees) are deliberately absent.
        """
        with self._lock:
            spans = list(self.spans)
        depth: dict[int, int] = {}
        skipped: set[int] = set()
        lines: list[str] = []
        for span in spans:
            if span.detail or span.parent_id in skipped:
                skipped.add(span.span_id)
                continue
            level = 0 if span.parent_id is None else depth.get(span.parent_id, 0) + 1
            depth[span.span_id] = level
            rendered = " ".join(
                f"{key}={span.attributes[key]!r}" for key in sorted(span.attributes)
            )
            lines.append("  " * level + span.name + (f" [{rendered}]" if rendered else ""))
        return "\n".join(lines)

    def as_dicts(self) -> list[dict[str, Any]]:
        """Every span as a plain dict, in creation order (exporter input)."""
        with self._lock:
            return [span.as_dict() for span in self.spans]


class NullTracer(Tracer):
    """Disabled tracer: hands out one shared no-op span and records nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, detail: bool = False, **attributes: Any):
        """Return the shared no-op span."""
        return _NULL_SPAN

    def event(self, name: str, **fields: Any) -> None:
        """No-op."""


#: Process-wide default tracer — tracing off unless :func:`use_tracer` installs one.
NULL_TRACER = NullTracer()

_TRACER: ContextVar[Tracer] = ContextVar("repro_obs_tracer", default=NULL_TRACER)


def current_tracer() -> Tracer:
    """The tracer installed for the current execution context.

    Defaults to :data:`NULL_TRACER`; instrumented hot paths call this once
    per logical operation and branch on ``tracer.enabled`` for anything
    beyond opening spans.
    """
    return _TRACER.get()


@contextlib.contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install *tracer* as :func:`current_tracer` for the enclosed block."""
    token = _TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _TRACER.reset(token)


def traced(name: str | None = None, **attributes: Any) -> Callable:
    """Decorator form of the span API.

    Wraps the function body in a span named *name* (default: the function's
    qualified name) on whatever tracer is current at call time — so a
    decorated helper is free under the default :data:`NULL_TRACER` and
    traced under :meth:`Engine.profile <repro.engine.engine.Engine.profile>`.
    """

    def decorate(function: Callable) -> Callable:
        span_name = name or function.__qualname__

        @functools.wraps(function)
        def wrapper(*args: Any, **kwargs: Any):
            with current_tracer().span(span_name, **attributes):
                return function(*args, **kwargs)

        return wrapper

    return decorate
