"""Exception hierarchy for the kSPR reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  The sub-classes mirror the main failure modes of
the system: malformed inputs, geometric degeneracies, and LP solver issues.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class InvalidDatasetError(ReproError):
    """Raised when a dataset (or record) does not satisfy basic requirements.

    Examples include non-2D arrays, mismatched dimensionality between a
    dataset and a focal record, NaN / infinite attribute values, or an empty
    dataset where records are required.
    """


class InvalidQueryError(ReproError):
    """Raised for malformed query parameters (e.g. ``k <= 0``)."""


class GeometryError(ReproError):
    """Raised when an exact-geometry operation cannot be completed.

    Typically signals a degenerate polytope (empty interior) passed to the
    halfspace-intersection finaliser, or an unbounded region where a bounded
    one was expected.
    """


class LPSolverError(ReproError):
    """Raised when the underlying LP solver fails unexpectedly.

    Infeasibility is *not* an error (it is a meaningful answer for the
    feasibility test); this exception covers numerical failures and solver
    statuses other than "optimal" / "infeasible".
    """
