"""Exception hierarchy for the kSPR reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  The sub-classes mirror the main failure modes of
the system: malformed inputs, geometric degeneracies, and LP solver issues.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class InvalidDatasetError(ReproError):
    """Raised when a dataset (or record) does not satisfy basic requirements.

    Examples include non-2D arrays, mismatched dimensionality between a
    dataset and a focal record, NaN / infinite attribute values, or an empty
    dataset where records are required.
    """


class InvalidQueryError(ReproError):
    """Raised for malformed query parameters (e.g. ``k <= 0``)."""


class GeometryError(ReproError):
    """Raised when an exact-geometry operation cannot be completed.

    Typically signals a degenerate polytope (empty interior) passed to the
    halfspace-intersection finaliser, or an unbounded region where a bounded
    one was expected.
    """


class SnapshotError(ReproError):
    """Raised for snapshot-store failures (missing snapshot, bad layout...).

    Covers structural problems with the on-disk store: unknown snapshot ids,
    malformed metadata, or commits against a corrupted directory tree.
    """


class SnapshotIntegrityError(SnapshotError):
    """Raised when persisted snapshot bytes fail fingerprint verification.

    A checkout recomputes the dataset fingerprint from the decoded payload
    and compares it against the committed metadata; any mismatch (bit rot,
    truncated write that slipped past the atomic-rename protocol, manual
    tampering) raises this instead of silently serving wrong data.
    """


class LPSolverError(ReproError):
    """Raised when the underlying LP solver fails unexpectedly.

    Infeasibility is *not* an error (it is a meaningful answer for the
    feasibility test); this exception covers numerical failures and solver
    statuses other than "optimal" / "infeasible".
    """
