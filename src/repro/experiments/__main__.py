"""Command-line entry point: ``python -m repro.experiments [figure ...]``.

Without arguments, lists the available figures.  With figure names (or
``all``), runs them in the quick configuration and prints the resulting
tables; pass ``--full`` for the larger grids used in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys

from .figures import FIGURES, run_figure
from .report import render_figure


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: regenerate the requested figures (``fig10b``, ``all``, ...)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("figures", nargs="*", help="figure ids (e.g. fig10b) or 'all'")
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the larger (slower) parameter grids instead of the quick ones",
    )
    arguments = parser.parse_args(argv)

    if not arguments.figures:
        print("Available figures:")
        for name in sorted(FIGURES):
            print(f"  {name}: {FIGURES[name].__doc__.splitlines()[0]}")
        return 0

    names = sorted(FIGURES) if arguments.figures == ["all"] else arguments.figures
    for name in names:
        result = run_figure(name, quick=not arguments.full)
        print(render_figure(result))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
