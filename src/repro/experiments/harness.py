"""Experiment drivers: focal selection, single runs, parameter sweeps.

The paper averages each plotted point over 1000 randomly selected focal
records on datasets of up to ten million records; a pure-Python reproduction
cannot afford that, so the harness runs a small, configurable number of
queries per point on scaled-down datasets.  Focal records are selected from
the skyline of the dataset (policy ``"skyline-random"``) so that queries are
non-trivial; the strongest record under equal weights (``"skyline-top"``)
guarantees a non-empty answer and is used where the figure needs one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..baselines import imaxrank, kskyband_cta, monochromatic_reverse_topk
from ..core import cta, lpcta, pcta
from ..core.original_space import o_cta, olp_cta, op_cta
from ..core.result import KSPRResult
from ..data import real_dataset, synthetic_dataset
from ..exceptions import InvalidQueryError
from ..index.rtree import AggregateRTree
from ..index.skyline import skyline
from ..records import Dataset
from .metrics import MeasuredRun

__all__ = ["ExperimentConfig", "METHOD_RUNNERS", "select_focal", "run_method", "sweep"]

#: Mapping of harness method names to callables ``(dataset, focal, k, **opts)``.
METHOD_RUNNERS: dict[str, Callable[..., KSPRResult]] = {
    "CTA": cta,
    "P-CTA": pcta,
    "LP-CTA": lpcta,
    "O-CTA": o_cta,
    "OP-CTA": op_cta,
    "OLP-CTA": olp_cta,
    "RTOPK": monochromatic_reverse_topk,
    "iMaxRank": imaxrank,
    "k-skyband": kskyband_cta,
}


@dataclass
class ExperimentConfig:
    """One experimental configuration (a single point of a figure)."""

    distribution: str = "IND"
    cardinality: int = 1000
    dimensionality: int = 3
    k: int = 5
    seed: int = 42
    queries: int = 1
    focal_policy: str = "skyline-random"
    method_options: dict[str, dict[str, Any]] = field(default_factory=dict)

    def dataset(self) -> Dataset:
        """Materialise the dataset described by this configuration."""
        name = self.distribution.upper()
        if name in ("IND", "COR", "ANTI"):
            return synthetic_dataset(name, self.cardinality, self.dimensionality, self.seed)
        return real_dataset(name, self.cardinality, self.seed)

    def label(self) -> dict[str, Any]:
        """Config columns attached to every measured run."""
        return {
            "distribution": self.distribution,
            "n": self.cardinality,
            "d": self.dimensionality,
            "k": self.k,
        }


def select_focal(
    dataset: Dataset,
    policy: str = "skyline-random",
    seed: int = 0,
    tree: AggregateRTree | None = None,
) -> np.ndarray:
    """Choose a focal record according to the given policy.

    Policies
    --------
    ``"skyline-random"``
        A uniformly random skyline record (non-dominated, so the query is not
        trivially empty; the answer may still be empty if the record is
        convexly dominated).
    ``"skyline-top"``
        The record with the highest equal-weights score; it is top-1 at the
        simplex centroid, so the answer is guaranteed non-empty.
    ``"random"``
        A uniformly random record (the paper's literal policy; most draws are
        deeply dominated and give empty answers almost for free).
    """
    if dataset.cardinality == 0:
        raise InvalidQueryError("cannot select a focal record from an empty dataset")
    rng = np.random.default_rng(seed)
    if policy == "random":
        position = int(rng.integers(dataset.cardinality))
        return dataset.values[position].copy()
    if tree is None:
        tree = AggregateRTree(dataset)
    skyline_ids = skyline(tree)
    if not skyline_ids:
        raise InvalidQueryError("the dataset has an empty skyline")
    if policy == "skyline-random":
        record_id = skyline_ids[int(rng.integers(len(skyline_ids)))]
        return dataset.record_by_id(record_id).values.copy()
    if policy == "skyline-top":
        best_id = max(skyline_ids, key=lambda rid: float(np.sum(dataset.record_by_id(rid).values)))
        return dataset.record_by_id(best_id).values.copy()
    raise InvalidQueryError(f"unknown focal policy {policy!r}")


def run_method(
    method: str,
    dataset: Dataset,
    focal: np.ndarray,
    k: int,
    config_label: dict[str, Any] | None = None,
    **options: Any,
) -> MeasuredRun:
    """Execute one algorithm on one query and collect its metrics."""
    if method not in METHOD_RUNNERS:
        raise InvalidQueryError(
            f"unknown method {method!r}; available: {', '.join(sorted(METHOD_RUNNERS))}"
        )
    result = METHOD_RUNNERS[method](dataset, focal, k, **options)
    return MeasuredRun.from_result(method, result, config_label)


def _average(runs: Sequence[MeasuredRun]) -> MeasuredRun:
    """Average the metrics of several runs of the same method/config."""
    first = runs[0]
    averaged = dict(first.metrics)
    for key in averaged:
        averaged[key] = float(np.mean([run.metrics.get(key, 0.0) for run in runs]))
    return MeasuredRun(method=first.method, config=dict(first.config), metrics=averaged)


def sweep(
    configs: Iterable[ExperimentConfig],
    methods: Sequence[str],
    extra_config: dict[str, dict[str, Any]] | None = None,
) -> list[MeasuredRun]:
    """Run every method on every configuration and return one row per pair.

    ``extra_config`` maps method names to keyword arguments forwarded to the
    algorithm (e.g. ``{"LP-CTA": {"bounds_mode": "group"}}``).
    """
    rows: list[MeasuredRun] = []
    for config in configs:
        dataset = config.dataset()
        tree = AggregateRTree(dataset)
        for method in methods:
            per_query: list[MeasuredRun] = []
            for query_index in range(config.queries):
                focal = select_focal(
                    dataset, config.focal_policy, seed=config.seed + query_index, tree=tree
                )
                options: dict[str, Any] = {}
                options.update((extra_config or {}).get(method, {}))
                options.update(config.method_options.get(method, {}))
                per_query.append(
                    run_method(method, dataset, focal, config.k, config.label(), **options)
                )
            rows.append(_average(per_query))
    return rows
