"""One function per table / figure of the paper's evaluation.

Every function returns a :class:`FigureResult` whose rows are
:class:`~repro.experiments.metrics.MeasuredRun` records; the benchmark suite
under ``benchmarks/`` and the CLI (``python -m repro.experiments``) render
them with :mod:`repro.experiments.report`.

All experiments are *scaled down* relative to the paper (pure-Python LP calls
are ~10^2–10^3x slower than the authors' C++ / ``lp_solve`` setup): the
``quick`` flag selects an even smaller grid so the whole suite stays in the
range of minutes.  EXPERIMENTS.md records, for every figure, the trend the
paper reports and the trend measured here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..analysis import market_impact
from ..core import lpcta
from ..core.celltree import CellTree
from ..data import howard_case_study, synthetic_dataset
from ..data.realistic import REAL_DATASETS
from ..exceptions import GeometryError
from ..geometry.halfspace import build_hyperplane
from ..geometry.linprog import LPCounters, cell_feasible
from ..geometry.polytope import intersect_halfspaces
from ..index.rtree import AggregateRTree
from .harness import ExperimentConfig, run_method, select_focal, sweep
from .metrics import MeasuredRun

__all__ = ["FigureResult", "FIGURES", "run_figure"]


@dataclass
class FigureResult:
    """Rows regenerating one table or figure of the paper."""

    figure: str
    title: str
    columns: list[str]
    rows: list[MeasuredRun] = field(default_factory=list)


# --------------------------------------------------------------------------- #
# Table 1 and the case study
# --------------------------------------------------------------------------- #
def table1_datasets(quick: bool = True) -> FigureResult:
    """Table 1: the real datasets (reproduced here as surrogates)."""
    cardinalities = {"HOTEL": 1500, "HOUSE": 1000, "NBA": 600} if quick else {
        "HOTEL": 4000,
        "HOUSE": 3000,
        "NBA": 2000,
    }
    rows = []
    for name, info in REAL_DATASETS.items():
        config = ExperimentConfig(
            distribution=name, cardinality=cardinalities[name], dimensionality=info["dimensionality"]
        )
        dataset = config.dataset()
        rows.append(
            MeasuredRun(
                method=name,
                config={"d": dataset.dimensionality, "n": dataset.cardinality},
                metrics={"paper_cardinality": float(info["paper_cardinality"])},
            )
        )
    return FigureResult(
        figure="table1",
        title="Table 1: real dataset information (surrogate cardinalities)",
        columns=["method", "d", "n", "paper_cardinality"],
        rows=rows,
    )


def figure09_case_study(quick: bool = True) -> FigureResult:
    """Figure 9: kSPR regions of the focal centre in two NBA seasons (k = 3)."""
    player_count = 200 if quick else 400
    rows = []
    for season in howard_case_study(player_count=player_count):
        start = time.perf_counter()
        result = lpcta(season.dataset, season.focal, k=3)
        elapsed = time.perf_counter() - start
        summary = market_impact(result, season.dataset.dimensionality, samples=4000, rng=7)
        preference = (
            summary.mean_preference
            if summary.mean_preference is not None
            else np.full(3, float("nan"))
        )
        rows.append(
            MeasuredRun(
                method="LP-CTA",
                config={"season": season.label, "k": 3},
                metrics={
                    "result_regions": float(len(result)),
                    "impact_probability": summary.uniform_probability,
                    "mean_w_points": float(preference[0]),
                    "mean_w_rebounds": float(preference[1]),
                    "mean_w_assists": float(preference[2]),
                    "response_seconds": elapsed,
                },
            )
        )
    return FigureResult(
        figure="fig09",
        title="Figure 9: NBA case study — where the focal centre is top-3",
        columns=[
            "season",
            "result_regions",
            "impact_probability",
            "mean_w_points",
            "mean_w_rebounds",
            "mean_w_assists",
            "response_seconds",
        ],
        rows=rows,
    )


# --------------------------------------------------------------------------- #
# Main performance comparisons (Figures 10-15)
# --------------------------------------------------------------------------- #
def figure10a_rtopk(quick: bool = True) -> FigureResult:
    """Figure 10(a): LP-CTA vs the monochromatic reverse top-k sweep (d = 2)."""
    k_values = [5, 10, 20] if quick else [10, 30, 50, 70, 90]
    cardinality = 20000 if quick else 100000
    configs = [
        ExperimentConfig(cardinality=cardinality, dimensionality=2, k=k, focal_policy="skyline-top")
        for k in k_values
    ]
    rows = sweep(configs, methods=["LP-CTA", "RTOPK"])
    return FigureResult(
        figure="fig10a",
        title="Figure 10(a): comparison with RTOPK (IND, d=2)",
        columns=["method", "k", "response_seconds", "processed_records", "result_regions"],
        rows=rows,
    )


def figure10b_methods(quick: bool = True) -> FigureResult:
    """Figure 10(b): CTA vs P-CTA vs LP-CTA vs iMaxRank, varying k."""
    k_values = [2, 4, 6] if quick else [2, 4, 6, 8, 10]
    cardinality = 150 if quick else 400
    configs = [
        ExperimentConfig(
            cardinality=cardinality, dimensionality=3, k=k, focal_policy="skyline-top"
        )
        for k in k_values
    ]
    rows = sweep(configs, methods=["iMaxRank", "CTA", "P-CTA", "LP-CTA"])
    return FigureResult(
        figure="fig10b",
        title="Figure 10(b): comparison with iMaxRank and between kSPR methods (IND)",
        columns=["method", "k", "response_seconds", "lp_calls", "result_regions"],
        rows=rows,
    )


def figure11_counters(quick: bool = True) -> FigureResult:
    """Figure 11: processed records and CellTree nodes as k varies."""
    k_values = [2, 4, 6] if quick else [2, 4, 6, 8, 10]
    cardinality = 400 if quick else 1000
    configs = [
        ExperimentConfig(
            cardinality=cardinality, dimensionality=3, k=k, focal_policy="skyline-top"
        )
        for k in k_values
    ]
    rows = sweep(configs, methods=["CTA", "P-CTA", "LP-CTA"])
    return FigureResult(
        figure="fig11",
        title="Figure 11: effect of k on processed records and CellTree size (IND)",
        columns=["method", "k", "processed_records", "celltree_nodes"],
        rows=rows,
    )


def figure12_cardinality(quick: bool = True) -> FigureResult:
    """Figure 12: effect of the dataset cardinality on time and space."""
    cardinalities = [500, 1000, 2000] if quick else [500, 1000, 2000, 5000, 10000]
    configs = [
        ExperimentConfig(cardinality=n, dimensionality=3, k=5, focal_policy="skyline-top")
        for n in cardinalities
    ]
    rows = sweep(configs, methods=["P-CTA", "LP-CTA"])
    return FigureResult(
        figure="fig12",
        title="Figure 12: effect of n (IND) — response time and space",
        columns=["method", "n", "response_seconds", "space_mb", "processed_records"],
        rows=rows,
    )


def figure13_dimensionality(quick: bool = True) -> FigureResult:
    """Figure 13: effect of the dimensionality on time and result size."""
    dims = [2, 3, 4] if quick else [2, 3, 4, 5]
    cardinality = 400 if quick else 800
    configs = [
        ExperimentConfig(cardinality=cardinality, dimensionality=d, k=5, focal_policy="skyline-top")
        for d in dims
    ]
    rows = sweep(configs, methods=["P-CTA", "LP-CTA"])
    return FigureResult(
        figure="fig13",
        title="Figure 13: effect of d (IND) — response time and result size",
        columns=["method", "d", "response_seconds", "result_regions"],
        rows=rows,
    )


def figure14_distribution(quick: bool = True) -> FigureResult:
    """Figure 14: effect of the data distribution (IND / COR / ANTI)."""
    k_values = [3, 5] if quick else [3, 5, 7, 9]
    cardinality = 600 if quick else 1500
    configs = [
        ExperimentConfig(
            distribution=distribution,
            cardinality=cardinality,
            dimensionality=3,
            k=k,
            focal_policy="skyline-top",
        )
        for distribution in ("ANTI", "IND", "COR")
        for k in k_values
    ]
    rows = sweep(configs, methods=["LP-CTA"])
    return FigureResult(
        figure="fig14",
        title="Figure 14: effect of the data distribution on LP-CTA",
        columns=["method", "distribution", "k", "response_seconds", "result_regions"],
        rows=rows,
    )


def figure15_real_datasets(quick: bool = True) -> FigureResult:
    """Figure 15: the real-dataset surrogates, varying k.

    The surrogates keep the paper's dimensionalities (4 / 6 / 8 attributes).
    Because skylines explode with dimensionality, the NBA (8-d) and HOUSE
    (6-d) cardinalities and k values are scaled down hard — see EXPERIMENTS.md.
    """
    k_values = {"HOTEL": [2, 3], "HOUSE": [2, 3], "NBA": [1]} if quick else {
        "HOTEL": [2, 3, 5],
        "HOUSE": [2, 3, 5],
        "NBA": [1, 2],
    }
    cardinalities = {"HOTEL": 500, "HOUSE": 300, "NBA": 40} if quick else {
        "HOTEL": 1500,
        "HOUSE": 800,
        "NBA": 80,
    }
    configs = [
        ExperimentConfig(
            distribution=name,
            cardinality=cardinalities[name],
            dimensionality=REAL_DATASETS[name]["dimensionality"],
            k=k,
            focal_policy="skyline-top",
        )
        for name in ("HOTEL", "HOUSE", "NBA")
        for k in k_values[name]
    ]
    rows = sweep(configs, methods=["P-CTA", "LP-CTA"])
    return FigureResult(
        figure="fig15",
        title="Figure 15: real dataset surrogates — response time and result size",
        columns=["method", "distribution", "k", "response_seconds", "result_regions"],
        rows=rows,
    )


# --------------------------------------------------------------------------- #
# Optimisation ablations (Figures 16-18)
# --------------------------------------------------------------------------- #
def _arrangement_leaves(
    cardinality: int, dimensionality: int, hyperplane_count: int, seed: int, sample: int = 50
):
    """Insert ``hyperplane_count`` hyperplanes with pruning disabled; sample leaves."""
    dataset = synthetic_dataset("IND", cardinality, dimensionality, seed)
    tree_index = AggregateRTree(dataset)
    focal = select_focal(dataset, "skyline-top", seed=seed, tree=tree_index)
    partition = dataset.partition_by_focal(focal)
    competitors = partition.competitors
    counters = LPCounters()
    celltree = CellTree(dimensionality - 1, k=hyperplane_count + 1, counters=counters)
    inserted = 0
    for record in competitors:
        if inserted >= hyperplane_count:
            break
        celltree.insert(build_hyperplane(record.values, focal, record.record_id))
        inserted += 1
    leaves = list(celltree.iter_active_leaves())
    rng = np.random.default_rng(seed)
    if len(leaves) > sample:
        chosen = rng.choice(len(leaves), size=sample, replace=False)
        leaves = [leaves[int(index)] for index in chosen]
    return celltree, leaves


def figure16_feasibility(quick: bool = True) -> FigureResult:
    """Figure 16: LP feasibility test vs exact halfspace intersection."""
    settings = (
        [("d", 3, 40), ("d", 4, 40), ("m", 3, 25), ("m", 3, 60)]
        if quick
        else [("d", 3, 60), ("d", 4, 60), ("d", 5, 60), ("m", 3, 30), ("m", 3, 80), ("m", 3, 150)]
    )
    rows = []
    for axis, dimensionality, hyperplane_count in settings:
        celltree, leaves = _arrangement_leaves(800, dimensionality, hyperplane_count, seed=11)
        transformed_dim = dimensionality - 1

        start = time.perf_counter()
        for leaf in leaves:
            cell_feasible(leaf.path_halfspaces(), transformed_dim)
        lp_seconds = time.perf_counter() - start

        start = time.perf_counter()
        for leaf in leaves:
            try:
                intersect_halfspaces(
                    leaf.path_halfspaces(), transformed_dim, interior_point=leaf.witness
                )
            except GeometryError:
                continue
        qhull_seconds = time.perf_counter() - start

        config = {"axis": axis, "d": dimensionality, "m": hyperplane_count, "leaves": len(leaves)}
        rows.append(
            MeasuredRun("lp_solve", config, {"response_seconds": lp_seconds})
        )
        rows.append(
            MeasuredRun("qhull", config, {"response_seconds": qhull_seconds})
        )
    return FigureResult(
        figure="fig16",
        title="Figure 16: LP-based feasibility test vs halfspace intersection",
        columns=["method", "axis", "d", "m", "leaves", "response_seconds"],
        rows=rows,
    )


def figure17_lemma2(quick: bool = True) -> FigureResult:
    """Figure 17: eliminating inconsequential halfspaces (Lemma 2)."""
    hyperplane_counts = [25, 50, 100] if quick else [50, 100, 200, 400]
    rows = []
    for hyperplane_count in hyperplane_counts:
        celltree, leaves = _arrangement_leaves(1200, 4, hyperplane_count, seed=13)
        transformed_dim = 3

        # Without Lemma 2: every defining halfspace (path labels + cover sets)
        # participates in the LP.
        start = time.perf_counter()
        full_constraints = 0
        for leaf in leaves:
            halfspaces = leaf.path_halfspaces() + leaf.cover_halfspaces()
            full_constraints += len(halfspaces)
            cell_feasible(halfspaces, transformed_dim)
        full_seconds = time.perf_counter() - start

        # With Lemma 2: only the (potentially bounding) path labels.
        start = time.perf_counter()
        lemma_constraints = 0
        for leaf in leaves:
            halfspaces = leaf.path_halfspaces()
            lemma_constraints += len(halfspaces)
            cell_feasible(halfspaces, transformed_dim)
        lemma_seconds = time.perf_counter() - start

        config = {"m": hyperplane_count, "leaves": len(leaves)}
        rows.append(
            MeasuredRun(
                "lp_solve",
                config,
                {
                    "response_seconds": full_seconds,
                    "avg_constraints": full_constraints / max(len(leaves), 1),
                },
            )
        )
        rows.append(
            MeasuredRun(
                "lp_solve+lemma_2",
                config,
                {
                    "response_seconds": lemma_seconds,
                    "avg_constraints": lemma_constraints / max(len(leaves), 1),
                },
            )
        )
    return FigureResult(
        figure="fig17",
        title="Figure 17: effectiveness of Lemma 2 (inconsequential halfspaces)",
        columns=["method", "m", "leaves", "avg_constraints", "response_seconds"],
        rows=rows,
    )


def figure18_bounds(quick: bool = True) -> FigureResult:
    """Figure 18: record vs group vs fast bounds inside LP-CTA."""
    k_values = [2, 4] if quick else [2, 4, 6]
    dims = [3] if quick else [3, 4]
    cardinality = 150 if quick else 400
    rows = []
    for dimensionality in dims:
        for k in k_values:
            config = ExperimentConfig(
                cardinality=cardinality,
                dimensionality=dimensionality,
                k=k,
                focal_policy="skyline-top",
            )
            dataset = config.dataset()
            tree_index = AggregateRTree(dataset)
            focal = select_focal(dataset, "skyline-top", seed=config.seed, tree=tree_index)
            for mode in ("record", "group", "fast"):
                label = dict(config.label())
                run = run_method(
                    "LP-CTA",
                    dataset,
                    focal,
                    k,
                    config_label=label,
                    bounds_mode=mode,
                )
                run.method = f"{mode}_bounds"
                rows.append(run)
    return FigureResult(
        figure="fig18",
        title="Figure 18: effectiveness of the group and fast bounds in LP-CTA",
        columns=["method", "d", "k", "response_seconds", "lp_calls", "result_regions"],
        rows=rows,
    )


# --------------------------------------------------------------------------- #
# Appendices (Figures 19-24)
# --------------------------------------------------------------------------- #
def figure19_disk(quick: bool = True) -> FigureResult:
    """Figure 19 (Appendix A): the disk-based scenario — CPU plus simulated I/O."""
    k_values = [3, 5] if quick else [3, 5, 7, 9]
    cardinality = 600 if quick else 1500
    configs = [
        ExperimentConfig(cardinality=cardinality, dimensionality=3, k=k, focal_policy="skyline-top")
        for k in k_values
    ]
    rows = sweep(configs, methods=["P-CTA", "LP-CTA"])
    return FigureResult(
        figure="fig19",
        title="Figure 19: disk-based scenario (0.2 ms per page access)",
        columns=[
            "method",
            "k",
            "cpu_seconds",
            "io_seconds",
            "total_seconds_with_io",
            "index_node_accesses",
        ],
        rows=rows,
    )


def figure20_kskyband(quick: bool = True) -> FigureResult:
    """Figure 20 (Appendix B): P-CTA vs the k-skyband approach."""
    k_values = [3, 5] if quick else [3, 5, 7, 9]
    cardinality = 600 if quick else 1500
    configs = [
        ExperimentConfig(cardinality=cardinality, dimensionality=3, k=k, focal_policy="skyline-top")
        for k in k_values
    ]
    rows = sweep(configs, methods=["P-CTA", "k-skyband"])
    return FigureResult(
        figure="fig20",
        title="Figure 20: P-CTA vs the k-skyband approach (IND)",
        columns=["method", "k", "processed_records", "response_seconds"],
        rows=rows,
    )


def figure22_original_space(quick: bool = True) -> FigureResult:
    """Figure 22 (Appendix C): transformed vs original preference space."""
    k_values = [3, 5] if quick else [3, 5, 7]
    cardinality = 300 if quick else 800
    configs = [
        ExperimentConfig(cardinality=cardinality, dimensionality=3, k=k, focal_policy="skyline-top")
        for k in k_values
    ]
    rows = sweep(configs, methods=["P-CTA", "OP-CTA", "LP-CTA", "OLP-CTA"])
    return FigureResult(
        figure="fig22",
        title="Figure 22: processing in the transformed vs the original space",
        columns=["method", "k", "response_seconds", "lp_calls", "celltree_nodes"],
        rows=rows,
    )


def figure23_index_build(quick: bool = True) -> FigureResult:
    """Figure 23 (Appendix D): index construction cost."""
    cardinalities = [1000, 5000, 20000] if quick else [1000, 5000, 20000, 50000, 100000]
    dims = [3, 5, 7] if quick else [2, 3, 4, 5, 6, 7]
    rows = []
    for cardinality in cardinalities:
        dataset = synthetic_dataset("IND", cardinality, 4, seed=3)
        for aggregate, label in ((False, "R-tree"), (True, "aR-tree")):
            tree = AggregateRTree(dataset, aggregate=aggregate)
            rows.append(
                MeasuredRun(
                    label,
                    {"axis": "n", "n": cardinality, "d": 4},
                    {"build_seconds": tree.build_seconds, "nodes": float(tree.node_count())},
                )
            )
    for dimensionality in dims:
        dataset = synthetic_dataset("IND", 5000, dimensionality, seed=3)
        for aggregate, label in ((False, "R-tree"), (True, "aR-tree")):
            tree = AggregateRTree(dataset, aggregate=aggregate)
            rows.append(
                MeasuredRun(
                    label,
                    {"axis": "d", "n": 5000, "d": dimensionality},
                    {"build_seconds": tree.build_seconds, "nodes": float(tree.node_count())},
                )
            )
    return FigureResult(
        figure="fig23",
        title="Figure 23: index construction time (R-tree vs aggregate R-tree)",
        columns=["method", "axis", "n", "d", "build_seconds", "nodes"],
        rows=rows,
    )


def figure24_amortized(quick: bool = True) -> FigureResult:
    """Figure 24 (Appendix D): response time with the index build amortised."""
    cardinalities = [500, 1000, 2000] if quick else [500, 1000, 2000, 5000, 10000]
    amortize_over = 1000.0  # the paper amortises over its 1000-query workloads
    configs = [
        ExperimentConfig(cardinality=n, dimensionality=3, k=5, focal_policy="skyline-top")
        for n in cardinalities
    ]
    rows = sweep(configs, methods=["P-CTA", "LP-CTA"])
    for run in rows:
        amortized = run.metrics["response_seconds"] + run.metrics["index_build_seconds"] / amortize_over
        run.metrics["amortized_seconds"] = amortized
    return FigureResult(
        figure="fig24",
        title="Figure 24: amortised response time (index build / 1000 queries)",
        columns=["method", "n", "response_seconds", "index_build_seconds", "amortized_seconds"],
        rows=rows,
    )


#: Registry used by the CLI and the benchmark suite.
FIGURES: dict[str, Callable[[bool], FigureResult]] = {
    "table1": table1_datasets,
    "fig09": figure09_case_study,
    "fig10a": figure10a_rtopk,
    "fig10b": figure10b_methods,
    "fig11": figure11_counters,
    "fig12": figure12_cardinality,
    "fig13": figure13_dimensionality,
    "fig14": figure14_distribution,
    "fig15": figure15_real_datasets,
    "fig16": figure16_feasibility,
    "fig17": figure17_lemma2,
    "fig18": figure18_bounds,
    "fig19": figure19_disk,
    "fig20": figure20_kskyband,
    "fig22": figure22_original_space,
    "fig23": figure23_index_build,
    "fig24": figure24_amortized,
}


def run_figure(figure: str, quick: bool = True) -> FigureResult:
    """Run the named figure/table experiment and return its rows."""
    if figure not in FIGURES:
        raise KeyError(f"unknown figure {figure!r}; available: {', '.join(sorted(FIGURES))}")
    return FIGURES[figure](quick)
