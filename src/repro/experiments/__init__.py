"""Experiment harness: regenerates every table and figure of the paper.

The harness is organised in three layers:

* :mod:`repro.experiments.metrics` — per-query metric collection (wall-clock,
  counters, simulated I/O) in a uniform record format;
* :mod:`repro.experiments.harness` — focal-record selection, single-query
  runners, and parameter-sweep drivers;
* :mod:`repro.experiments.figures` — one function per table/figure of the
  paper, returning the rows that correspond to the published plot, registered
  in :data:`repro.experiments.figures.FIGURES`;
* :mod:`repro.experiments.report` — plain-text rendering of those rows.

The benchmark suite under ``benchmarks/`` is a thin wrapper around this
package; ``python -m repro.experiments`` can also print any figure directly.
"""

from .figures import FIGURES, run_figure
from .harness import ExperimentConfig, run_method, select_focal, sweep
from .metrics import MeasuredRun
from .report import format_table, render_figure

__all__ = [
    "FIGURES",
    "run_figure",
    "ExperimentConfig",
    "run_method",
    "select_focal",
    "sweep",
    "MeasuredRun",
    "format_table",
    "render_figure",
]
