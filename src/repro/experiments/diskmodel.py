"""Simulated I/O cost model for the disk-based scenario (Appendix A).

The paper's disk experiments charge one random page read per R-tree node
access at 0.2 ms (SSD).  The algorithms in this library count node accesses
through :class:`~repro.index.rtree.IOCounter`; this module converts those
counts into simulated I/O time and combines them with CPU time, reproducing
the stacked bars of Figure 19.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.result import QueryStats

__all__ = ["DiskCostModel", "DiskCost"]

#: Default random-read latency the paper states for its SSD (seconds).
DEFAULT_SECONDS_PER_PAGE = 0.0002


@dataclass(frozen=True)
class DiskCost:
    """Breakdown of a query's cost in the disk-based scenario."""

    cpu_seconds: float
    io_seconds: float
    page_reads: int

    @property
    def total_seconds(self) -> float:
        """Total simulated response time (CPU + I/O)."""
        return self.cpu_seconds + self.io_seconds


@dataclass(frozen=True)
class DiskCostModel:
    """Converts node-access counts into simulated I/O time."""

    seconds_per_page: float = DEFAULT_SECONDS_PER_PAGE

    def cost(self, stats: QueryStats) -> DiskCost:
        """Disk-scenario cost of a query described by ``stats``."""
        io_seconds = stats.index_node_accesses * self.seconds_per_page
        return DiskCost(
            cpu_seconds=stats.response_seconds,
            io_seconds=io_seconds,
            page_reads=stats.index_node_accesses,
        )
