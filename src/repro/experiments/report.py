"""Plain-text rendering of experiment results.

The harness produces :class:`~repro.experiments.metrics.MeasuredRun` rows;
this module lays them out as aligned text tables, one per figure, mimicking
the series the paper plots.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .figures import FigureResult
from .metrics import MeasuredRun

__all__ = ["format_table", "render_figure"]


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(columns: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Align ``rows`` under ``columns`` as a monospace table."""
    rendered = [[_format_value(value) for value in row] for row in rows]
    widths = [len(column) for column in columns]
    for row in rendered:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    header = "  ".join(column.ljust(widths[index]) for index, column in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(value.ljust(widths[index]) for index, value in enumerate(row))
        for row in rendered
    ]
    return "\n".join([header, separator, *body])


def render_figure(result: FigureResult) -> str:
    """Render one figure's rows, preceded by its title."""
    rows = [run.row(result.columns) for run in result.rows]
    table = format_table(result.columns, rows)
    return f"{result.title}\n{table}"


def render_runs(title: str, columns: Sequence[str], runs: Iterable[MeasuredRun]) -> str:
    """Render ad-hoc runs that are not part of a registered figure."""
    rows = [run.row(list(columns)) for run in runs]
    return f"{title}\n{format_table(columns, rows)}"
