"""Uniform metric records for the experiment harness.

Every algorithm run is summarised into a :class:`MeasuredRun`: a flat mapping
of the quantities the paper plots (response time, processed records, CellTree
nodes, LP calls, result size, space, simulated I/O).  Keeping the record flat
makes the report layer trivial and lets figures mix metrics freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.result import KSPRResult

__all__ = ["MeasuredRun"]

#: Seconds charged per simulated random page read (the paper's SSD figure).
SECONDS_PER_PAGE = 0.0002


@dataclass
class MeasuredRun:
    """Metrics of one (algorithm, configuration) execution."""

    method: str
    config: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_result(
        cls, method: str, result: KSPRResult, config: dict[str, Any] | None = None
    ) -> "MeasuredRun":
        """Build a record from a :class:`KSPRResult` and its statistics."""
        stats = result.stats
        io_seconds = stats.io_seconds(SECONDS_PER_PAGE)
        metrics = {
            "response_seconds": stats.response_seconds,
            "cpu_seconds": stats.response_seconds,
            "io_seconds": io_seconds,
            "total_seconds_with_io": stats.response_seconds + io_seconds,
            "result_regions": float(len(result)),
            "processed_records": float(stats.processed_records),
            "competitor_records": float(stats.competitor_records),
            "celltree_nodes": float(stats.celltree_nodes),
            "lp_calls": float(stats.lp.total_calls),
            "lp_constraints": float(stats.lp.total_constraints),
            "index_node_accesses": float(stats.index_node_accesses),
            "space_mb": stats.space_bytes / (1024.0 * 1024.0),
            "cells_reported_early": float(stats.cells_reported_early),
            "cells_pruned_by_bounds": float(stats.cells_pruned_by_bounds),
            "batches": float(stats.batches),
            "index_build_seconds": stats.index_build_seconds,
        }
        return cls(method=method, config=dict(config or {}), metrics=metrics)

    def row(self, columns: list[str]) -> list[Any]:
        """Values for the requested columns (config keys first, then metrics)."""
        values: list[Any] = []
        for column in columns:
            if column == "method":
                values.append(self.method)
            elif column in self.config:
                values.append(self.config[column])
            else:
                values.append(self.metrics.get(column, float("nan")))
        return values
