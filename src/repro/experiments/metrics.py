"""Uniform metric records for the experiment harness.

Every algorithm run is summarised into a :class:`MeasuredRun`: a flat mapping
of the quantities the paper plots (response time, processed records, CellTree
nodes, LP calls, result size, space, simulated I/O).  Keeping the record flat
makes the report layer trivial and lets figures mix metrics freely.

Since the unified metrics registry (:mod:`repro.obs`) exists, a
``MeasuredRun`` is a *view* over canonical metrics rather than a fourth
naming scheme: :meth:`MeasuredRun.from_result` lifts the result's statistics
through :func:`~repro.obs.stats_to_registry` and reads the canonical
``query.*`` names back out, and :meth:`MeasuredRun.as_registry` exposes any
run under its canonical names for the Prometheus exporter.  The flat metric
keys themselves are kept stable (they are the column names of every
committed benchmark JSON and figure script).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.result import KSPRResult
from ..obs.metrics import MetricsRegistry, canonical_name, stats_to_registry

__all__ = ["MeasuredRun"]

#: Seconds charged per simulated random page read (the paper's SSD figure).
SECONDS_PER_PAGE = 0.0002


@dataclass
class MeasuredRun:
    """Metrics of one (algorithm, configuration) execution."""

    method: str
    config: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_result(
        cls, method: str, result: KSPRResult, config: dict[str, Any] | None = None
    ) -> "MeasuredRun":
        """Build a record from a :class:`KSPRResult` and its statistics.

        The statistics pass through the canonical registry
        (:func:`~repro.obs.stats_to_registry`), so every value here is
        byte-equal to what the observability layer reports for the same run;
        only the derived quantities (simulated I/O seconds, megabytes) are
        computed locally.  ``cpu_seconds`` is the genuinely measured process
        CPU time, not a copy of the wall clock.
        """
        stats = result.stats
        snapshot = stats_to_registry(stats, regions=len(result)).snapshot()
        io_seconds = stats.io_seconds(SECONDS_PER_PAGE)
        metrics = {
            "response_seconds": snapshot["query.seconds.response"],
            "cpu_seconds": snapshot["query.seconds.cpu"],
            "io_seconds": io_seconds,
            "total_seconds_with_io": snapshot["query.seconds.response"] + io_seconds,
            "result_regions": float(snapshot["query.regions"]),
            "processed_records": float(snapshot["query.processed_records"]),
            "competitor_records": float(snapshot["query.competitor_records"]),
            "celltree_nodes": float(snapshot["query.celltree.nodes"]),
            "lp_calls": float(stats.lp.total_calls),
            "lp_constraints": float(snapshot["query.lp.total_constraints"]),
            "index_node_accesses": float(snapshot["query.index.node_accesses"]),
            "space_mb": snapshot["query.space_bytes"] / (1024.0 * 1024.0),
            "cells_reported_early": float(snapshot["query.celltree.reported_early"]),
            "cells_pruned_by_bounds": float(snapshot["query.celltree.pruned_by_bounds"]),
            "batches": float(snapshot["query.batches"]),
            "index_build_seconds": snapshot["query.seconds.index_build"],
        }
        return cls(method=method, config=dict(config or {}), metrics=metrics)

    def as_registry(self) -> MetricsRegistry:
        """This run's metrics as gauges under their canonical names.

        Legacy flat keys resolve through
        :data:`~repro.obs.LEGACY_ALIASES` (``response_seconds`` becomes
        ``query.seconds.response``); keys with no canonical spelling
        (derived quantities like ``space_mb``) pass through unchanged.
        """
        registry = MetricsRegistry()
        for name, value in self.metrics.items():
            registry.gauge(canonical_name(name)).set(float(value))
        return registry

    def row(self, columns: list[str]) -> list[Any]:
        """Values for the requested columns (config keys first, then metrics)."""
        values: list[Any] = []
        for column in columns:
            if column == "method":
                values.append(self.method)
            elif column in self.config:
                values.append(self.config[column])
            else:
                values.append(self.metrics.get(column, float("nan")))
        return values
