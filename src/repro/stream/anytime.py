"""Anytime kSPR execution: pull partial results, pause, resume.

The streaming cores (:func:`repro.core.progressive.progressive_ticks`,
:func:`repro.core.cta.cta_ticks` and :func:`repro.parallel.subtree.parallel_ticks`)
expose the kSPR loops as suspendable generators of
:class:`~repro.core.base.StreamTick` work units.  This module is the driver on
top of them:

* :class:`StreamBudget` — a cooperative execution budget (wall-clock
  deadline, batch cap, cancellation flag) checked *between* work units, so
  granularity is one batch / chunk / shard commit;
* :class:`AnytimeQuery` — wraps a tick stream, accumulates certified regions
  and yields :class:`~repro.core.result.PartialKSPRResult` snapshots whose
  ``[lower, upper]`` impact brackets tighten monotonically.  Advancing past
  the budget simply stops pulling; the suspended generator keeps all loop
  state, so a later :meth:`AnytimeQuery.advance` resumes exactly where the
  query paused and the final answer is byte-identical to an uninterrupted
  run;
* :func:`stream_kspr` — the `kspr()`-shaped entry point returning an
  :class:`AnytimeQuery` for any method (serial or, for CTA, sharded across
  worker processes).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterator, Sequence

import numpy as np

from ..core.base import (
    PreparedQuery,
    QueryContext,
    ReportedCell,
    StreamTick,
    build_region,
    build_result,
    prepare_context,
)
from ..core.bounds import BoundsMode, OriginalSpaceBoundEvaluator, TransformedBoundEvaluator
from ..core.cta import cta_ticks
from ..core.progressive import progressive_ticks
from ..core.query import resolve_method, validate_query
from ..core.result import KSPRResult, PartialKSPRResult, PreferenceRegion
from ..exceptions import InvalidQueryError
from ..obs.trace import current_tracer
from ..records import Dataset
from ..robust import Tolerance

__all__ = ["StreamBudget", "AnytimeQuery", "stream_kspr"]


class StreamBudget:
    """Cooperative execution budget for one :meth:`AnytimeQuery.advance` call.

    ``deadline`` is a wall-clock allowance in seconds (from the moment the
    budget is created), ``deadline_at`` an *absolute* :func:`time.perf_counter`
    instant (a serving layer propagates one request deadline through every
    stage this way, so queueing time is charged against the same budget as
    compute), ``max_batches`` caps the number of work units pulled by this
    advance, and ``cancel`` is a :class:`threading.Event` (or any object with
    ``is_set()``, or a zero-argument callable) flipped by the caller to stop
    the stream at the next work-unit boundary.  ``None`` everywhere means
    "run to completion"; when both deadline forms are given the earlier
    instant wins.  A ``deadline_at`` already in the past is exhausted
    immediately (callers that want expired deadlines rejected up front must
    check before starting — see ``repro.serve.AdmissionController``).
    """

    def __init__(
        self,
        deadline: float | None = None,
        max_batches: int | None = None,
        cancel: threading.Event | Callable[[], bool] | None = None,
        deadline_at: float | None = None,
    ) -> None:
        if deadline is not None and deadline < 0:
            raise InvalidQueryError("deadline must be non-negative seconds")
        if max_batches is not None and max_batches < 1:
            raise InvalidQueryError("max_batches must be a positive integer")
        self.expires_at = None if deadline is None else time.perf_counter() + float(deadline)
        if deadline_at is not None:
            absolute = float(deadline_at)
            self.expires_at = absolute if self.expires_at is None else min(
                self.expires_at, absolute
            )
        self.max_batches = None if max_batches is None else int(max_batches)
        self.cancel = cancel
        #: Work units consumed under this budget so far.
        self.consumed = 0

    def cancelled(self) -> bool:
        """Whether the caller has flipped the cancellation flag."""
        if self.cancel is None:
            return False
        probe = getattr(self.cancel, "is_set", self.cancel)
        return bool(probe())

    def exhausted(self) -> bool:
        """Whether the next work unit may still be pulled."""
        if self.cancelled():
            return True
        if self.max_batches is not None and self.consumed >= self.max_batches:
            return True
        if self.expires_at is not None and time.perf_counter() >= self.expires_at:
            return True
        return False


class AnytimeQuery:
    """One in-flight kSPR query that can be advanced, paused and resumed.

    Built by :func:`stream_kspr` (or :meth:`repro.engine.Engine.query_stream`,
    which additionally checkpoints paused instances for warm-started
    re-issues).  Pulling snapshots::

        query = stream_kspr(dataset, focal, k=3)
        for snapshot in query.advance(deadline=0.25):
            lo, hi = snapshot.impact_bracket()
        if query.done:
            exact = query.result()
        else:
            ...  # act on query.partial(), resume later with another advance()

    The final :meth:`result` is byte-identical to the corresponding
    all-at-once call (same regions, order, ranks, halfspaces, witnesses) no
    matter how many pauses the query went through.
    """

    def __init__(
        self,
        context: QueryContext,
        ticks: Iterator[StreamTick],
        finalize_geometry: bool = True,
    ) -> None:
        self._context = context
        self._ticks = ticks
        self._finalize_geometry = finalize_geometry
        self._reported: list[ReportedCell] = []
        self._regions: list[PreferenceRegion] = []
        self._tree = None
        self._batches = 0
        self._ticks_consumed = 0
        self._done = False
        self._error: BaseException | None = None
        self._result: KSPRResult | None = None
        self._last: PartialKSPRResult | None = None
        #: When the query last did work (construction counts: preparation
        #: already ran); the gap until the next pull is *pause time*,
        #: excluded from response-time accounting — including a pause taken
        #: before any tick was consumed (e.g. a deadline=0 checkpoint).
        self._idle_since: float | None = time.perf_counter()
        self._advanced_before = False
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        """True once the terminal work unit has been consumed."""
        return self._done

    @property
    def failed(self) -> bool:
        """True when the underlying computation raised; the query is dead.

        A failed query is neither resumable nor checkpointable — advancing it
        again re-raises instead of silently returning a truncated answer.
        """
        return self._error is not None

    @property
    def context(self) -> QueryContext:
        """The underlying query context (dataset snapshot, stats, tolerance)."""
        return self._context

    @property
    def ticks_consumed(self) -> int:
        """Total work units pulled from the producer over the query's lifetime.

        This is the *replay cursor* of a persisted checkpoint: the tick
        streams are deterministic, so a fresh query over the same prepared
        input advanced by exactly this many units is suspended at the
        byte-identical point (see :mod:`repro.snapshot`).
        """
        return self._ticks_consumed

    def partial(self) -> PartialKSPRResult:
        """The most recent snapshot (an empty zero-progress one before any advance)."""
        with self._lock:
            if self._last is None:
                self._last = self._snapshot(StreamTick())
            return self._last

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def advance(
        self,
        *,
        deadline: float | None = None,
        max_batches: int | None = None,
        cancel: threading.Event | Callable[[], bool] | None = None,
        deadline_at: float | None = None,
    ) -> Iterator[PartialKSPRResult]:
        """Pull work units under a budget, yielding one snapshot per unit.

        Stops — leaving the query suspended and resumable — when the budget
        is exhausted, the cancellation flag is set, or the query completes
        (the last yielded snapshot then has ``done=True``).  Budget checks
        happen between work units, so a deadline can overshoot by at most one
        batch / chunk / shard commit.  ``deadline_at`` is the absolute
        :func:`time.perf_counter` form of ``deadline`` (the earlier instant
        wins when both are given) — see :class:`StreamBudget`.
        """
        budget = StreamBudget(
            deadline=deadline, max_batches=max_batches, cancel=cancel,
            deadline_at=deadline_at,
        )
        # The span is created (not entered): a generator's frames run in the
        # caller's context at each pull, so contextvar-scoped entry would
        # leak across yields.  Events land on the span object directly.
        was_resumed = self._advanced_before
        span = current_tracer().span("stream.advance", resumed=was_resumed)
        self._advanced_before = True
        resume_noted = False
        try:
            while not self._done and not budget.exhausted():
                with self._lock:
                    if self._done:
                        break
                    if self._error is not None:
                        raise InvalidQueryError(
                            f"the stream previously failed ({self._error!r}) and cannot resume"
                        ) from self._error
                    if self._idle_since is not None:
                        # Shift the response-time baseline past the pause so
                        # elapsed/response seconds measure compute, not the time
                        # the query sat suspended between advances.
                        paused = time.perf_counter() - self._idle_since
                        self._context.started_at += paused
                        self._idle_since = None
                        # The baseline also shifts between yields of one
                        # advance() call (consumer pacing); only the first
                        # shift of a re-issued advance() is a stream resume.
                        if was_resumed and not resume_noted:
                            span.event("stream.resume", paused_seconds=paused)
                            resume_noted = True
                    try:
                        tick = next(self._ticks, None)
                    except BaseException as error:
                        # The producer crashed: surface it now and on every later
                        # advance — a dead stream must never look completed.
                        self._error = error
                        raise
                    if tick is None:
                        self._error = InvalidQueryError(
                            "the tick stream ended without its terminal work unit"
                        )
                        raise self._error
                    snapshot = self._consume(tick)
                    self._ticks_consumed += 1
                    self._idle_since = time.perf_counter()
                budget.consumed += 1
                yield snapshot
            if not self._done:
                span.event("stream.pause", consumed=budget.consumed)
        finally:
            span.note(consumed=budget.consumed)
            span.set(done=self._done)
            span.finish()

    def run(self) -> KSPRResult:
        """Drain the stream to completion and return the exact result."""
        for _ in self.advance():
            pass
        return self.result()

    def result(self) -> KSPRResult:
        """The complete :class:`KSPRResult`; raises until the query is done."""
        with self._lock:
            if not self._done:
                raise InvalidQueryError(
                    "query has not finished; advance() it to completion first"
                )
            if self._result is None:
                self._result = build_result(
                    self._context, self._reported, self._tree, self._finalize_geometry
                )
            return self._result

    def close(self) -> None:
        """Abandon the query, releasing producer resources (worker pools)."""
        closer = getattr(self._ticks, "close", None)
        if closer is not None:
            closer()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _consume(self, tick: StreamTick) -> PartialKSPRResult:
        context = self._context
        for cell in tick.new_cells:
            self._reported.append(cell)
            self._regions.append(build_region(context, cell))
        if tick.tree is not None:
            self._tree = tick.tree
        self._batches = max(self._batches, tick.batches)
        self._done = tick.done
        self._last = self._snapshot(tick)
        return self._last

    def _snapshot(self, tick: StreamTick) -> PartialKSPRResult:
        context = self._context
        return PartialKSPRResult(
            context.focal,
            context.k,
            tuple(self._regions),
            context.stats,
            done=self._done,
            batches=self._batches,
            frontier=() if self._done else tick.frontier,
            dimensionality=context.cell_dimensionality,
            space=context.space,
            tolerance=context.tolerance,
            elapsed_seconds=time.perf_counter() - context.started_at,
            processed_records=tick.processed,
        )


def stream_kspr(
    dataset: Dataset | np.ndarray | Sequence[Sequence[float]],
    focal: np.ndarray | Sequence[float],
    k: int,
    method: str = "lpcta",
    *,
    workers: int | None = None,
    chunk_size: int | None = None,
    shard_factor: int | None = None,
    prepared: PreparedQuery | None = None,
    bounds_mode: BoundsMode | str = BoundsMode.FAST,
    space: str = "transformed",
    finalize_geometry: bool = True,
    tolerance: Tolerance | float | None = None,
    capture: bool = True,
) -> AnytimeQuery:
    """Open an anytime kSPR query (the streaming counterpart of :func:`repro.kspr`).

    Accepts the same query triple and method names as :func:`repro.kspr` and
    returns an :class:`AnytimeQuery` ready to be advanced under a budget.

    Parameters
    ----------
    dataset:
        The competing options, as a :class:`~repro.records.Dataset` or raw
        ``(n, d)`` array-like.
    focal:
        The focal record whose impact regions are sought.
    k:
        Shortlist size.
    method:
        Any exact :func:`repro.kspr` method name (``"lpcta"`` default).
        The approximate ``"sample"`` mode has no streaming implementation —
        its adaptive variant already refines incrementally.
    workers:
        ``> 1`` shards a ``"cta"`` query's CellTree expansion across worker
        processes (:func:`repro.parallel.subtree.parallel_ticks`): per-shard
        region streams are merged back in the deterministic depth-first
        order of the seed tree, so snapshots — and the final result — are
        identical to the serial stream.
    chunk_size:
        CTA tick granularity (records per work unit); subsystem default
        when ``None``.
    shard_factor:
        Parallel over-partitioning factor; subsystem default when ``None``.
    prepared:
        Prepared per-focal state from a serving layer (skips partitioning
        and the competitor R-tree build).
    bounds_mode:
        LP-CTA look-ahead configuration (``"fast"``, ``"group"``,
        ``"record"``).
    space:
        ``"transformed"`` (default) or ``"original"`` (Appendix C variants).
    finalize_geometry:
        Whether the terminal result computes exact region geometry.
    tolerance:
        Numerical policy for every comparison of the query (see
        :mod:`repro.robust`).
    capture:
        ``False`` skips the per-tick frontier freeze (an
        O(active leaves × tree depth) copy): snapshots then report the
        trivial ``impact_upper() == 1.0`` until completion, but
        pause/resume and region streaming are unaffected — the right trade
        for consumers that never read brackets.

    Returns
    -------
    AnytimeQuery
        The suspended query; pull snapshots with
        :meth:`AnytimeQuery.advance`, or drain with
        :meth:`AnytimeQuery.run`.

    Raises
    ------
    InvalidQueryError
        For malformed query inputs, an unknown method, or a method without
        a streaming implementation.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import Dataset, stream_kspr
    >>> data = Dataset(np.array([[3, 8, 8], [9, 4, 4], [8, 3, 4], [4, 3, 6]]))
    >>> query = stream_kspr(data, focal=[5, 5, 7], k=3)
    >>> for snapshot in query.advance(max_batches=1):
    ...     lower, upper = snapshot.impact_bracket()
    >>> exact = query.run()          # finish whenever convenient
    >>> bool(lower <= exact.impact_probability() <= upper)
    True
    """
    if not isinstance(dataset, Dataset):
        dataset = Dataset(np.asarray(dataset, dtype=float))
    focal = validate_query(dataset, focal, k)
    method_name, _ = resolve_method(method)

    if method_name == "cta":
        if workers is not None and workers > 1:
            # Local import: repro.parallel imports the engine's batch module.
            from ..parallel.subtree import DEFAULT_SHARD_FACTOR, parallel_ticks
            from ..parallel.shards import resolve_workers

            worker_count = resolve_workers(workers)
            context = prepare_context(
                dataset,
                focal,
                k,
                algorithm=f"CTA[workers={worker_count}]",
                space=space,
                prepared=prepared,
                tolerance=tolerance,
            )
            ticks = parallel_ticks(
                context,
                workers=worker_count,
                shard_factor=DEFAULT_SHARD_FACTOR if shard_factor is None else shard_factor,
                capture=capture,
            )
            return AnytimeQuery(context, ticks, finalize_geometry)
        context = prepare_context(
            dataset, focal, k, algorithm="CTA", space=space, prepared=prepared,
            tolerance=tolerance,
        )
        return AnytimeQuery(
            context, cta_ticks(context, chunk_size, capture=capture), finalize_geometry
        )

    if method_name == "pcta":
        context = prepare_context(
            dataset, focal, k, algorithm="P-CTA", prepared=prepared, tolerance=tolerance
        )
        return AnytimeQuery(
            context, progressive_ticks(context, None, capture=capture), finalize_geometry
        )

    if method_name == "lpcta":
        if isinstance(bounds_mode, str):
            bounds_mode = BoundsMode(bounds_mode)
        context = prepare_context(
            dataset,
            focal,
            k,
            algorithm=f"LP-CTA[{bounds_mode.value}]",
            prepared=prepared,
            tolerance=tolerance,
        )
        evaluator = None
        if context.effective_k >= 1:
            evaluator = TransformedBoundEvaluator(
                tree=context.tree,
                focal=context.focal,
                dimensionality=context.cell_dimensionality,
                counters=context.counters,
                mode=bounds_mode,
                tolerance=context.tolerance,
            )
        return AnytimeQuery(
            context, progressive_ticks(context, evaluator, capture=capture), finalize_geometry
        )

    if method_name == "op_cta":
        context = prepare_context(
            dataset, focal, k, algorithm="OP-CTA", space="original", prepared=prepared,
            tolerance=tolerance,
        )
        return AnytimeQuery(
            context, progressive_ticks(context, None, capture=capture), finalize_geometry=False
        )

    if method_name == "olp_cta":
        context = prepare_context(
            dataset, focal, k, algorithm="OLP-CTA", space="original", prepared=prepared,
            tolerance=tolerance,
        )
        evaluator = None
        if context.effective_k >= 1:
            evaluator = OriginalSpaceBoundEvaluator(
                tree=context.tree,
                focal=context.focal,
                dimensionality=context.cell_dimensionality,
                counters=context.counters,
                tolerance=context.tolerance,
            )
        return AnytimeQuery(
            context, progressive_ticks(context, evaluator, capture=capture), finalize_geometry=False
        )

    raise InvalidQueryError(f"method {method_name!r} has no streaming implementation")
