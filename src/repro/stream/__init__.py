"""``repro.stream`` — anytime kSPR region streaming with deadline-aware serving.

The paper's progressive algorithms certify answer regions long before the
query finishes (Lemma 5), but the all-at-once drivers only hand back a
complete :class:`~repro.core.result.KSPRResult`.  This subsystem exposes the
progressive loops as *streams*:

* :func:`stream_kspr` opens an :class:`AnytimeQuery` for any method —
  including CTA sharded across worker processes — whose
  :meth:`~AnytimeQuery.advance` yields
  :class:`~repro.core.result.PartialKSPRResult` snapshots as regions are
  certified, each with a provable ``[lower, upper]`` bracket on the final
  impact probability that tightens monotonically;
* :class:`StreamBudget` bounds an advance by wall-clock deadline, batch
  count, or a cancellation flag; exhausting the budget *pauses* the query —
  resuming later produces a final answer byte-identical to an uninterrupted
  run;
* the serving layer builds on the same seam:
  :meth:`repro.engine.Engine.query_stream` checkpoints deadline-truncated
  queries in a partial-result cache and warm-starts them on re-issue.

Quick start
-----------
>>> import numpy as np
>>> from repro import Dataset
>>> from repro.stream import stream_kspr
>>> data = Dataset(np.array([[3, 8, 8], [9, 4, 4], [8, 3, 4], [4, 3, 6]]))
>>> query = stream_kspr(data, focal=[5, 5, 7], k=3)
>>> snapshots = list(query.advance())
>>> query.done and snapshots[-1].done
True
>>> lo, hi = snapshots[-1].impact_bracket()
>>> abs(hi - lo) < 1e-9  # the bracket collapses on completion
True
"""

from .anytime import AnytimeQuery, StreamBudget, stream_kspr

__all__ = ["AnytimeQuery", "StreamBudget", "stream_kspr"]
