"""Workload generation and replay for load-testing the serving engine.

Real multi-query traffic is skewed: a few "hot" options are queried far more
often than the long tail, and different users ask for different shortlist
sizes.  :func:`generate_workload` models this with

* **Zipf-skewed focal selection** — candidate focal records are ranked (by
  attribute sum, a proxy for popularity) and drawn with probability
  proportional to ``1 / rank^s``;
* **mixed-k traces** — each query draws its ``k`` independently from a
  configurable range or choice set;
* optional multiplicative **perturbation**, so focals are near-records rather
  than exact dataset members (exercising the cold path more).

Workloads are deterministic given a seed, serialise to JSON for replay across
processes, and :func:`replay` runs one against an engine (sequentially or
through a concurrent :class:`~repro.engine.QueryBatch`), returning the
aggregated :class:`~repro.engine.batch.BatchReport`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..exceptions import InvalidQueryError
from ..records import Dataset
from .batch import BatchReport, QueryBatch, QuerySpec

__all__ = [
    "WorkloadQuery",
    "Workload",
    "zipf_weights",
    "resolve_rng",
    "generate_workload",
    "replay",
]


@dataclass(frozen=True)
class WorkloadQuery:
    """One trace entry: a focal record, a shortlist size, optional overrides.

    ``tenant`` identifies the (simulated) customer issuing the query — the
    unit the serving tier's admission control budgets on.  ``None`` (the
    default, and the value for every pre-tenant trace) means "anonymous";
    :func:`replay` and :meth:`spec` ignore it, so tenant-annotated traces
    replay unchanged through the non-tenant surfaces.
    """

    focal: tuple[float, ...]
    k: int
    method: str | None = None
    tenant: str | None = None

    def spec(self) -> QuerySpec:
        """The equivalent :class:`~repro.engine.batch.QuerySpec`."""
        return QuerySpec(focal=np.asarray(self.focal, dtype=float), k=self.k, method=self.method)


@dataclass
class Workload:
    """An ordered trace of queries plus the parameters that generated it."""

    queries: list[WorkloadQuery] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[WorkloadQuery]:
        return iter(self.queries)

    @property
    def unique_focals(self) -> int:
        """Number of distinct focal records in the trace."""
        return len({query.focal for query in self.queries})

    @property
    def unique_queries(self) -> int:
        """Number of distinct (focal, k, method) triples in the trace."""
        return len({(query.focal, query.k, query.method) for query in self.queries})

    @property
    def unique_tenants(self) -> int:
        """Number of distinct tenant identifiers in the trace (0 if untagged)."""
        return len({query.tenant for query in self.queries if query.tenant is not None})

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        """Serialise the workload (queries + metadata) to a JSON string."""
        return json.dumps(
            {
                "metadata": self.metadata,
                "queries": [
                    {
                        "focal": list(query.focal),
                        "k": query.k,
                        "method": query.method,
                        **({"tenant": query.tenant} if query.tenant is not None else {}),
                    }
                    for query in self.queries
                ],
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "Workload":
        """Rebuild a workload from :meth:`to_json` output."""
        decoded = json.loads(payload)
        return cls(
            queries=[
                WorkloadQuery(
                    focal=tuple(float(value) for value in query["focal"]),
                    k=int(query["k"]),
                    method=query.get("method"),
                    tenant=query.get("tenant"),
                )
                for query in decoded["queries"]
            ],
            metadata=decoded.get("metadata", {}),
        )


def zipf_weights(count: int, s: float = 1.1) -> np.ndarray:
    """Probabilities of a (finite) Zipf law: ``p(rank) ∝ 1 / rank^s``."""
    if count < 1:
        raise InvalidQueryError("a Zipf distribution needs at least one outcome")
    ranks = np.arange(1, count + 1, dtype=float)
    weights = ranks ** (-float(s))
    return weights / weights.sum()


def resolve_rng(
    rng: np.random.Generator | int | None, seed: int | None = None
) -> np.random.Generator:
    """Normalise the ``rng`` / ``seed`` pair into a Generator.

    An explicit generator (or integer seed) in ``rng`` wins; otherwise a new
    generator is built from ``seed``.  All randomness in this module flows
    through the returned generator — there is deliberately no module-level
    random state anywhere, so two calls with the same seed produce identical
    workloads in any process, order or interleaving.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is not None:
        return np.random.default_rng(int(rng))
    return np.random.default_rng(seed)


def generate_workload(
    dataset: Dataset,
    size: int,
    *,
    zipf_s: float = 1.1,
    focal_pool: int | None = None,
    k_range: tuple[int, int] = (1, 10),
    k_choices: Sequence[int] | None = None,
    perturb: float = 0.0,
    method: str | None = None,
    tenants: int | None = None,
    tenant_zipf_s: float = 1.1,
    seed: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> Workload:
    """Generate a Zipf-skewed, mixed-``k`` query trace over ``dataset``.

    Parameters
    ----------
    size:
        Number of queries in the trace.
    zipf_s:
        Skew exponent; larger values concentrate traffic on fewer focals.
    focal_pool:
        How many candidate focal records to draw from (default: all records).
        Candidates are ranked by attribute sum, so the hottest focals are the
        generally-strong options — the records a service would actually be
        asked about.
    k_range / k_choices:
        Each query's ``k`` is drawn uniformly from ``k_choices`` when given,
        otherwise from the inclusive ``k_range``; values are clamped to the
        dataset cardinality.
    perturb:
        Relative magnitude of multiplicative noise applied to each candidate
        focal once (0 keeps exact record values).
    method:
        Optional per-query method override recorded in the trace.
    tenants:
        Tag each query with a tenant id drawn from ``tenants`` simulated
        customers (``"tenant-0000"`` ... zero-padded, so ids sort).  Like
        real multi-tenant traffic, tenant activity is itself Zipf-skewed
        (``tenant_zipf_s``): a few hot tenants issue most of the queries —
        exactly the shape per-tenant admission budgets in
        :mod:`repro.serve` exist to contain.  ``None`` (default) leaves the
        trace untagged, byte-identical to pre-tenant traces for the same
        seed.
    tenant_zipf_s:
        Skew exponent of the tenant-activity Zipf law (ignored without
        ``tenants``).
    seed:
        Seed for reproducible traces (same seed ⇒ identical workload).
    rng:
        Explicit :class:`numpy.random.Generator` (or integer seed) taking
        precedence over ``seed``; pass a shared generator to interleave
        workload generation with other seeded draws deterministically.
    """
    if size < 1:
        raise InvalidQueryError("workload size must be at least 1")
    if dataset.cardinality == 0:
        raise InvalidQueryError("cannot generate a workload over an empty dataset")
    rng = resolve_rng(rng, seed)

    pool = dataset.cardinality if focal_pool is None else min(focal_pool, dataset.cardinality)
    popularity = np.argsort(-dataset.values.sum(axis=1), kind="stable")[:pool]
    candidates = dataset.values[popularity].astype(float)
    if perturb > 0.0:
        noise = 1.0 + perturb * (rng.random(candidates.shape) - 0.5)
        candidates = candidates * noise

    probabilities = zipf_weights(pool, zipf_s)
    focal_indices = rng.choice(pool, size=size, p=probabilities)

    if k_choices is not None:
        choices = np.asarray(list(k_choices), dtype=int)
        if choices.size == 0 or int(choices.min()) < 1:
            raise InvalidQueryError(f"invalid k_choices {tuple(k_choices)!r}: every k must be >= 1")
        ks = rng.choice(choices, size=size)
    else:
        low, high = int(k_range[0]), int(k_range[1])
        if low < 1 or high < low:
            raise InvalidQueryError(f"invalid k_range {k_range!r}")
        ks = rng.integers(low, high + 1, size=size)
    ks = np.minimum(ks, dataset.cardinality)

    # Tenant tagging draws *after* the focal/k draws, so untagged traces
    # (tenants=None) are byte-identical to pre-tenant ones for the same seed.
    if tenants is not None:
        if int(tenants) < 1:
            raise InvalidQueryError("tenants must be a positive integer")
        tenant_count = int(tenants)
        width = max(4, len(str(tenant_count - 1)))
        tenant_indices = rng.choice(
            tenant_count, size=size, p=zipf_weights(tenant_count, tenant_zipf_s)
        )
        tenant_ids = [f"tenant-{int(index):0{width}d}" for index in tenant_indices]
    else:
        tenant_ids = [None] * size

    queries = [
        WorkloadQuery(
            focal=tuple(float(value) for value in candidates[int(index)]),
            k=int(k),
            method=method,
            tenant=tenant,
        )
        for index, k, tenant in zip(focal_indices, ks, tenant_ids)
    ]
    return Workload(
        queries=queries,
        metadata={
            "size": size,
            "zipf_s": zipf_s,
            "focal_pool": pool,
            "k_range": list(k_range) if k_choices is None else None,
            "k_choices": list(k_choices) if k_choices is not None else None,
            "perturb": perturb,
            "tenants": None if tenants is None else int(tenants),
            "tenant_zipf_s": tenant_zipf_s if tenants is not None else None,
            "seed": seed,
            "dataset": dataset.name,
            "cardinality": dataset.cardinality,
            "dimensionality": dataset.dimensionality,
        },
    )


def replay(engine, workload: Workload, max_workers: int | None = 1) -> BatchReport:
    """Run a workload against an engine and return the aggregated report.

    ``max_workers=1`` (default) replays sequentially — the right mode for
    timing comparisons; larger values use a concurrent
    :class:`~repro.engine.QueryBatch`.
    """
    batch = QueryBatch(engine, max_workers=max_workers)
    return batch.run(query.spec() for query in workload)
