"""LRU result cache for the multi-query serving engine.

Entries are keyed on ``(dataset fingerprint, focal, k, method, options)`` so a
cached answer can only ever be served for the *exact* query it was computed
for, against the *exact* dataset state it was computed on.  On a dataset
update the engine decides, per entry, whether the inserted / deleted record
could influence that entry's answer (see
:meth:`repro.engine.Engine.insert`); unaffected entries are *re-keyed* to the
new dataset fingerprint and keep serving, affected ones are dropped.  That is
what makes invalidation precise instead of a blanket flush.

:class:`PartialStore` applies the same keying and invalidation discipline to
*paused anytime queries*: a deadline-truncated
:meth:`~repro.engine.Engine.query_stream` checkpoints its suspended
:class:`~repro.stream.AnytimeQuery` here, and a re-issue of the same query
warm-starts from the checkpoint instead of recomputing from scratch.  An
update that provably cannot change an entry's answer (the exact rule of
:meth:`Engine._is_affected`) also cannot change its pruned competitor input,
so unaffected checkpoints stay resumable across updates; affected ones are
closed and dropped.
"""

from __future__ import annotations

import enum
import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.result import KSPRResult
from ..robust import Tolerance

__all__ = ["CacheEntry", "ResultCache", "PartialEntry", "PartialStore", "options_key"]


def _canonical_value(value) -> tuple | str:
    """Collision-free, hashable canonical form of one option value.

    ``repr`` is *not* good enough here: ``repr(np.ndarray)`` elides large
    arrays with ``...`` (so two distinct option arrays can collide on one
    cache key) and its formatting varies across numpy versions.  Arrays are
    therefore keyed on their full bytes plus dtype and shape, numeric scalars
    are normalised (``np.float64(2.0)``, ``2.0`` and ``2`` with equal value
    but different types never alias a *different* value), and containers
    recurse.
    """
    if isinstance(value, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest()
        return ("ndarray", str(value.dtype), value.shape, digest)
    if isinstance(value, (bool, np.bool_)):
        return ("bool", bool(value))
    if isinstance(value, (int, np.integer)):
        return ("int", int(value))
    if isinstance(value, (float, np.floating)):
        return ("float", repr(float(value)))
    if isinstance(value, str):
        return ("str", value)
    if value is None:
        return ("none",)
    if isinstance(value, Tolerance):
        return value.as_key()
    if isinstance(value, enum.Enum):
        return ("enum", type(value).__name__, value.name)
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(_canonical_value(item) for item in value))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(map(repr, value))))
    if isinstance(value, dict):
        return (
            "map",
            tuple(sorted((str(k), _canonical_value(v)) for k, v in value.items())),
        )
    return ("repr", type(value).__name__, repr(value))


def options_key(options: dict) -> tuple:
    """Canonical, hashable, collision-free form of a keyword-options dict."""
    return tuple(sorted((name, _canonical_value(value)) for name, value in options.items()))


@dataclass
class CacheEntry:
    """One cached query answer plus the metadata needed for precise invalidation."""

    fingerprint: str
    focal: np.ndarray
    k: int
    method: str
    opts: tuple
    result: KSPRResult
    #: Whether the cold run used k-skyband pruning (affects which dataset
    #: updates can change the answer).
    pruned: bool = False

    @property
    def key(self) -> tuple:
        """The lookup key this entry is stored under."""
        return (self.fingerprint, self.focal.tobytes(), self.k, self.method, self.opts)


class ResultCache:
    """A bounded LRU cache of :class:`~repro.core.result.KSPRResult` objects.

    ``capacity=0`` is legal and means *caching disabled*: every ``put`` is
    immediately evicted again, every ``get`` misses.  ``capacity=1`` behaves
    as a true single-slot LRU (a hit refreshes the slot, the next distinct
    ``put`` replaces it).

    Not thread-safe by itself; :class:`repro.engine.Engine` serialises access
    through its own lock.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, CacheEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.invalidated = 0
        self.rekeyed = 0

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def entries(self) -> list[CacheEntry]:
        """Current entries, least recently used first."""
        return list(self._entries.values())

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()

    # ------------------------------------------------------------------ #
    # lookup / insertion
    # ------------------------------------------------------------------ #
    def get(self, key: tuple) -> KSPRResult | None:
        """The cached result for ``key``, or None; refreshes LRU order on a hit."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.result

    def put(self, entry: CacheEntry) -> None:
        """Insert an entry, evicting the least recently used one when full."""
        key = entry.key
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = entry
            return
        self._entries[key] = entry
        self.insertions += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------ #
    # update-driven invalidation
    # ------------------------------------------------------------------ #
    def apply_update(
        self,
        new_fingerprint: str,
        is_affected: Callable[[CacheEntry], bool],
    ) -> tuple[int, int]:
        """Reconcile the cache with a dataset update.

        Entries for which ``is_affected`` returns True are dropped; the rest
        are re-keyed under ``new_fingerprint`` (their answers are provably
        unchanged by the update) with LRU order preserved.  Returns
        ``(retained, dropped)`` counts.

        Exception-safe: every ``is_affected`` verdict is collected *before*
        any entry is mutated, so a callback that raises leaves the cache
        exactly as it was — no entry re-keyed under the new fingerprint
        while the index still holds the old keys, no half-applied swap.
        """
        entries = list(self._entries.values())
        affected = [bool(is_affected(entry)) for entry in entries]
        retained: OrderedDict[tuple, CacheEntry] = OrderedDict()
        dropped = 0
        for entry, drop in zip(entries, affected):
            if drop:
                dropped += 1
                continue
            entry.fingerprint = new_fingerprint
            retained[entry.key] = entry
        self._entries = retained
        self.invalidated += dropped
        self.rekeyed += len(retained)
        return len(retained), dropped

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def info(self) -> dict[str, int | float]:
        """Counters in a plain dict (for logs, benchmarks and tests)."""
        lookups = self.hits + self.misses
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidated": self.invalidated,
            "rekeyed": self.rekeyed,
        }


@dataclass
class PartialEntry:
    """One paused anytime query plus the metadata for precise invalidation.

    ``query`` is the suspended :class:`~repro.stream.AnytimeQuery` — its
    generator holds the full loop state (CellTree, processed set, certified
    cells), which is what makes a resumed run byte-identical to an
    uninterrupted one.
    """

    fingerprint: str
    focal: np.ndarray
    k: int
    method: str
    opts: tuple
    #: The suspended AnytimeQuery (typed loosely: the store never advances
    #: it, it only checkpoints, hands back and closes).
    query: object
    #: Whether the stream's cold path used k-skyband pruning (same role as
    #: :attr:`CacheEntry.pruned` in the invalidation rule).
    pruned: bool = False
    #: Whether the suspended producers freeze the frontier per tick.  A
    #: ``capture=False`` checkpoint cannot serve a ``capture=True`` re-issue
    #: (its snapshots would silently carry only the trivial upper bound), so
    #: the engine declines to resume it for such callers.
    capture: bool = True
    #: The effective (canonicalised) query options the stream ran under.
    #: Live suspended generators cannot be serialised, so persistence
    #: (:mod:`repro.snapshot`) stores the *replay recipe* instead — these
    #: options plus the consumed-tick count — and the engine rebuilds the
    #: stream deterministically on first resume after a restart.
    options: dict | None = None
    #: Worker count of the suspended producers (informational; restarted
    #: replays always use the serial path, which is snapshot-for-snapshot
    #: identical to the sharded one).
    workers: int | None = None

    @property
    def key(self) -> tuple:
        """The lookup key this entry is stored under."""
        return (self.fingerprint, self.focal.tobytes(), self.k, self.method, self.opts)

    def close(self) -> None:
        """Release the checkpoint's resources (suspended generators, pools)."""
        closer = getattr(self.query, "close", None)
        if closer is not None:
            closer()


class PartialStore:
    """A bounded LRU of paused anytime-query checkpoints.

    ``capacity=0`` disables checkpointing: a ``put`` immediately evicts (and
    closes) the entry, so no paused stream is ever retained.

    Mirrors :class:`ResultCache`'s keying and update reconciliation, with two
    differences: a ``pop`` (checkout) removes the entry — a checkpoint must
    never be advanced by two consumers concurrently — and every entry that
    leaves the store without being resumed is ``close()``d so suspended
    worker pools are released.  Not thread-safe by itself;
    :class:`repro.engine.Engine` serialises access through its own lock.
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 0:
            raise ValueError("partial store capacity must be non-negative")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, PartialEntry] = OrderedDict()
        self.saves = 0
        self.resumes = 0
        self.evictions = 0
        self.invalidated = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def entries(self) -> list[PartialEntry]:
        """Current checkpoints, least recently used first (for persistence)."""
        return list(self._entries.values())

    def peek(self, key: tuple) -> PartialEntry | None:
        """Look at a checkpoint without checking it out or counting a resume.

        Lets the engine inspect entry metadata (e.g. the capture mode) and
        decide between :meth:`pop` (actual resume) and :meth:`discard`
        (unusable checkpoint) without skewing the counters."""
        return self._entries.get(key)

    def pop(self, key: tuple) -> PartialEntry | None:
        """Check a checkpoint out of the store (it must be re-``put`` to persist)."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            self.resumes += 1
        return entry

    def discard(self, key: tuple) -> None:
        """Drop (and close) a checkpoint that will never be resumed.

        Used when a full result lands under the same key: the checkpoint is
        unreachable from then on — every lookup hits the result cache first —
        so its resources (suspended generators, worker pools) are released
        immediately instead of lingering until LRU pressure.
        """
        entry = self._entries.pop(key, None)
        if entry is not None:
            entry.close()

    def put(self, entry: PartialEntry) -> None:
        """Checkpoint a paused query, evicting (and closing) the LRU one when full."""
        key = entry.key
        existing = self._entries.pop(key, None)
        if existing is not None and existing.query is not entry.query:
            existing.close()
        self._entries[key] = entry
        self.saves += 1
        while len(self._entries) > self.capacity:
            _, evicted = self._entries.popitem(last=False)
            evicted.close()
            self.evictions += 1

    def clear(self) -> None:
        """Close and drop every checkpoint (counters are preserved)."""
        for entry in self._entries.values():
            entry.close()
        self._entries.clear()

    def apply_update(
        self,
        new_fingerprint: str,
        is_affected: Callable[[PartialEntry], bool],
    ) -> tuple[int, int]:
        """Reconcile the checkpoints with a dataset update.

        Affected entries are closed and dropped (their suspended computation
        runs against a competitor set the update may have changed);
        unaffected ones are re-keyed under ``new_fingerprint`` — the update
        provably cannot change their answer *or* their pruned competitor
        input, so the suspended computation remains exactly the one a cold
        re-run would perform.  Returns ``(retained, dropped)``.

        Exception-safe like :meth:`ResultCache.apply_update`: all verdicts
        are decided before any checkpoint is closed or re-keyed, so a
        raising ``is_affected`` leaves every checkpoint untouched (and
        still open).
        """
        entries = list(self._entries.values())
        affected = [bool(is_affected(entry)) for entry in entries]
        retained: OrderedDict[tuple, PartialEntry] = OrderedDict()
        dropped = 0
        for entry, drop in zip(entries, affected):
            if drop:
                entry.close()
                dropped += 1
                continue
            entry.fingerprint = new_fingerprint
            retained[entry.key] = entry
        self._entries = retained
        self.invalidated += dropped
        return len(retained), dropped

    def info(self) -> dict[str, int]:
        """Counters in a plain dict (for logs and tests)."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "saves": self.saves,
            "resumes": self.resumes,
            "evictions": self.evictions,
            "invalidated": self.invalidated,
        }
