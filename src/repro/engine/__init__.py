"""``repro.engine`` — amortized multi-query kSPR serving.

The :func:`repro.kspr` entry point answers each query from scratch.  This
subsystem is the serving layer on top of the same algorithms:

* :class:`Engine` — prepares a dataset once (incremental k-skyband dominator
  counts, shared aggregate R-tree, per-focal partitions / competitor indexes /
  hyperplane caches) and serves many queries against the prepared state, with
  an LRU result cache and precise, update-aware invalidation;
* :class:`QueryBatch` / :func:`run_batch` — concurrent execution of
  independent queries with aggregated statistics;
* :class:`ResultCache` — the LRU cache (exposed for inspection and tests);
* :func:`generate_workload` / :func:`replay` — Zipf-skewed, mixed-``k``
  workload traces for load testing and benchmarks.

Quick start
-----------
>>> import numpy as np
>>> from repro import Dataset
>>> from repro.engine import Engine
>>> data = Dataset(np.array([[3, 8, 8], [9, 4, 4], [8, 3, 4], [4, 3, 6]]))
>>> engine = Engine(data, k_max=4)
>>> first = engine.query([5, 5, 7], k=3)     # cold: computes and caches
>>> again = engine.query([5, 5, 7], k=3)     # hot: served from the cache
>>> again is first
True
>>> new_id = engine.insert([6.0, 6.0, 6.0])  # incremental update
>>> engine.query([5, 5, 7], k=3) is first    # affected entry was invalidated
False
"""

from .batch import BatchReport, QueryBatch, QueryOutcome, QuerySpec, run_batch
from .cache import CacheEntry, PartialEntry, PartialStore, ResultCache, options_key
from .engine import Engine, EngineStats
from .workload import Workload, WorkloadQuery, generate_workload, replay, zipf_weights

__all__ = [
    "Engine",
    "EngineStats",
    "ResultCache",
    "CacheEntry",
    "PartialStore",
    "PartialEntry",
    "options_key",
    "QueryBatch",
    "QuerySpec",
    "QueryOutcome",
    "BatchReport",
    "run_batch",
    "Workload",
    "WorkloadQuery",
    "generate_workload",
    "replay",
    "zipf_weights",
]
