"""Concurrent batch execution of independent kSPR queries.

:class:`QueryBatch` drives an :class:`~repro.engine.Engine` with a pool of
worker threads (``concurrent.futures.ThreadPoolExecutor``): independent
queries share the engine's prepared state and result cache, and the report
aggregates per-query statistics (timings, processed records, LP calls, cache
hits) across the whole batch.

The engine's ``query`` method is thread-safe; queries that land on the same
focal record share one prepared context, and repeated queries are answered
from the result cache without recomputation.

:meth:`QueryBatch.run_anytime` is the deadline-aware mode: the batch shares
one wall-clock budget, every query is served through the engine's streaming
path, and when the budget (or a cancellation flag) cuts the batch short each
unfinished query returns its :class:`~repro.core.result.PartialKSPRResult`
snapshot — with the engine checkpointing the paused stream, so re-issuing the
batch warm-starts instead of recomputing.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..core.result import KSPRResult, PartialKSPRResult
from ..stream.anytime import StreamBudget

__all__ = ["QuerySpec", "QueryOutcome", "BatchReport", "QueryBatch", "run_batch", "coerce_spec"]


@dataclass(frozen=True)
class QuerySpec:
    """One query of a batch: focal record, shortlist size, optional overrides."""

    focal: np.ndarray
    k: int
    method: str | None = None
    options: tuple = ()

    def option_dict(self) -> dict:
        """The per-query keyword options as a dict."""
        return dict(self.options)


@dataclass
class QueryOutcome:
    """Result (or failure, or deadline-truncated partial) of one batch query."""

    index: int
    spec: QuerySpec
    result: KSPRResult | None = None
    error: Exception | None = None
    seconds: float = 0.0
    #: Anytime snapshot when the budget ran out before the query finished
    #: (resumable through the engine's partial-result cache).
    partial: PartialKSPRResult | None = None
    #: True when a deadline skipped the query before any work was done.
    skipped: bool = False

    @property
    def ok(self) -> bool:
        """True when the query did not raise.

        Deadline-skipped and partial outcomes are ``ok`` — they failed
        nothing — but did not finish; use :attr:`completed` as the success
        predicate when a full result is what counts.
        """
        return self.error is None

    @property
    def completed(self) -> bool:
        """True when a full (non-partial) result was produced."""
        return self.error is None and self.result is not None


@dataclass
class BatchReport:
    """Aggregated outcome of a whole batch."""

    outcomes: list[QueryOutcome] = field(default_factory=list)
    #: Wall-clock seconds for the entire batch (submission to last completion).
    wall_seconds: float = 0.0
    #: Engine cache hits / cold queries attributable to this batch.
    cache_hits: int = 0
    cold_queries: int = 0

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self) -> Iterator[QueryOutcome]:
        return iter(self.outcomes)

    @property
    def results(self) -> list[KSPRResult]:
        """Results of the successful queries, in submission order."""
        return [outcome.result for outcome in self.outcomes if outcome.result is not None]

    @property
    def errors(self) -> list[QueryOutcome]:
        """Outcomes that raised."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def failures(self) -> list[QueryOutcome]:
        """Outcomes that raised (alias of :attr:`errors`)."""
        return self.errors

    @property
    def partials(self) -> list[QueryOutcome]:
        """Outcomes truncated by a deadline/cancellation, carrying a partial result."""
        return [outcome for outcome in self.outcomes if outcome.partial is not None]

    @property
    def skipped(self) -> list[QueryOutcome]:
        """Outcomes a deadline skipped before any work was done."""
        return [
            outcome
            for outcome in self.outcomes
            if outcome.skipped and outcome.partial is None
        ]

    def summary(self) -> dict[str, float]:
        """Aggregate statistics across the batch (for logs and benchmarks).

        Per-query timing aggregates cover outcomes that actually ran
        (completed or partial); deadline-skipped entries contribute no
        0-second samples to the mean/max.
        """
        ran = [
            outcome for outcome in self.outcomes if outcome.ok and not outcome.skipped
        ]
        per_query = [outcome.seconds for outcome in ran]
        results = self.results
        return {
            "queries": float(len(self.outcomes)),
            "failed": float(len(self.errors)),
            "partial": float(len(self.partials)),
            "skipped": float(len(self.skipped)),
            "wall_seconds": self.wall_seconds,
            "query_seconds_total": float(sum(per_query)),
            "query_seconds_max": float(max(per_query)) if per_query else 0.0,
            "query_seconds_mean": float(np.mean(per_query)) if per_query else 0.0,
            "cache_hits": float(self.cache_hits),
            "cold_queries": float(self.cold_queries),
            "regions_total": float(sum(len(result) for result in results)),
            "processed_records_total": float(
                sum(result.stats.processed_records for result in results)
            ),
            "lp_calls_total": float(sum(result.stats.lp.total_calls for result in results)),
        }


def coerce_spec(index: int, spec: QuerySpec | Sequence) -> QueryOutcome:
    """Normalise a spec (or ``(focal, k[, method])`` tuple) into a blank outcome."""
    if isinstance(spec, QuerySpec):
        return QueryOutcome(index=index, spec=spec)
    focal, k, *rest = spec
    method = rest[0] if rest else None
    return QueryOutcome(
        index=index,
        spec=QuerySpec(focal=np.asarray(focal, dtype=float), k=int(k), method=method),
    )


class QueryBatch:
    """Execute independent queries against one engine, concurrently.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.Engine` to query.
    max_workers:
        Thread-pool size; ``None`` uses the executor default.  ``1`` gives
        deterministic sequential execution (useful for timing comparisons).
    workers:
        When greater than 1, the batch is executed by worker *processes*
        instead of threads (see :class:`repro.parallel.ShardedExecutor`):
        queries are sharded per focal record, answered in parallel on
        separate cores, and the results — identical to what the engine would
        compute — are adopted into the engine's result cache so follow-up
        queries hit.  Threads share the GIL; processes do not, which is what
        makes CPU-bound kSPR batches scale with cores.
    """

    def __init__(self, engine, max_workers: int | None = None, workers: int | None = None) -> None:
        self.engine = engine
        self.max_workers = max_workers
        self.workers = workers

    def run(self, specs: Iterable[QuerySpec | tuple]) -> BatchReport:
        """Run every query and return a :class:`BatchReport` in submission order.

        Each element may be a :class:`QuerySpec` or a ``(focal, k)`` /
        ``(focal, k, method)`` tuple.  Failures are captured per-query (the
        batch always completes).
        """
        if self.workers is not None and self.workers > 1:
            return self._run_sharded(specs)
        normalized = [coerce_spec(index, spec) for index, spec in enumerate(specs)]
        hits_before = self.engine.stats.cache_hits
        cold_before = self.engine.stats.cold_queries

        start = time.perf_counter()
        if self.max_workers == 1:
            outcomes = [self._run_one(spec) for spec in normalized]
        else:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                outcomes = list(pool.map(self._run_one, normalized))
        wall = time.perf_counter() - start

        return BatchReport(
            outcomes=outcomes,
            wall_seconds=wall,
            cache_hits=self.engine.stats.cache_hits - hits_before,
            cold_queries=self.engine.stats.cold_queries - cold_before,
        )

    def _run_sharded(self, specs: Iterable[QuerySpec | tuple]) -> BatchReport:
        """Multi-process execution: shard per focal, adopt results into the engine.

        The dataset snapshot and its dominator counts are captured atomically
        (one engine lock acquisition) so worker pruning always matches the
        snapshot it runs against, even while updates race the batch.  Specs
        the engine has already answered are served from its result cache;
        only the misses are dispatched to the worker pool.
        """
        from ..parallel.executor import ShardedExecutor  # local import: avoids a cycle

        engine = self.engine
        snapshot, counts = engine.snapshot_state()
        fingerprint = snapshot.fingerprint()
        start = time.perf_counter()

        normalized = [coerce_spec(index, spec) for index, spec in enumerate(specs)]
        pending: list[QueryOutcome] = []
        engine_hits = 0
        for outcome in normalized:
            spec = outcome.spec
            cached = engine.cached_result(
                spec.focal, spec.k, spec.method, spec.option_dict(), fingerprint=fingerprint
            )
            if cached is not None:
                outcome.result = cached
                engine_hits += 1
            else:
                pending.append(outcome)

        executor_hits = 0
        cold_queries = 0
        if pending:
            executor = ShardedExecutor(
                snapshot,
                workers=self.workers,
                method=engine.default_method,
                k_max=engine.k_max,
                fanout=engine.fanout,
                prune_skyband=engine.prune_skyband,
                dominator_counts=counts,
                tolerance=engine.tolerance,
            )
            sub_report = executor.run([outcome.spec for outcome in pending])
            executor_hits = sub_report.cache_hits
            cold_queries = sub_report.cold_queries
            for outcome, computed in zip(pending, sub_report.outcomes):
                outcome.result = computed.result
                outcome.error = computed.error
                outcome.seconds = computed.seconds
                if computed.result is not None:
                    engine.adopt_result(
                        fingerprint,
                        outcome.spec.focal,
                        outcome.spec.k,
                        outcome.spec.method,
                        outcome.spec.option_dict(),
                        computed.result,
                    )

        return BatchReport(
            outcomes=normalized,
            wall_seconds=time.perf_counter() - start,
            cache_hits=engine_hits + executor_hits,
            cold_queries=cold_queries,
        )

    def _run_one(self, outcome: QueryOutcome) -> QueryOutcome:
        spec = outcome.spec
        start = time.perf_counter()
        try:
            outcome.result = self.engine.query(
                spec.focal, spec.k, method=spec.method, **spec.option_dict()
            )
        except Exception as error:  # noqa: BLE001 - reported per query
            outcome.error = error
        outcome.seconds = time.perf_counter() - start
        return outcome

    # ------------------------------------------------------------------ #
    # anytime (deadline-aware) execution
    # ------------------------------------------------------------------ #
    def run_anytime(
        self,
        specs: Iterable[QuerySpec | tuple],
        *,
        deadline: float | None = None,
        max_batches: int | None = None,
        cancel: threading.Event | Callable[[], bool] | None = None,
        capture: bool = True,
    ) -> BatchReport:
        """Serve the batch under one shared wall-clock budget, never all-or-nothing.

        Queries run sequentially (in submission order) through
        :meth:`~repro.engine.Engine.query_stream`, sharing the batch-wide
        ``deadline`` (seconds).  When the budget — or the ``cancel`` flag, or
        a per-query ``max_batches`` cap — cuts a query short, its outcome
        carries the last :class:`~repro.core.result.PartialKSPRResult`
        snapshot in ``partial`` and the engine checkpoints the paused stream:
        re-running the same batch resumes each unfinished query from its
        cached frontier instead of starting over.  Queries the budget never
        reached are marked ``skipped``.  Failures are captured per query; the
        batch always returns a complete report.  ``capture=False`` skips the
        per-tick frontier freeze when nobody will read the partials' impact
        brackets — the cheapest way to run a purely deadline-bounded batch.
        """
        normalized = [coerce_spec(index, spec) for index, spec in enumerate(specs)]
        hits_before = self.engine.stats.cache_hits
        cold_before = self.engine.stats.cold_queries
        start = time.perf_counter()
        expires_at = None if deadline is None else start + float(deadline)
        # One budget probes the batch-level cancellation flag; the per-query
        # deadline is recomputed each iteration from the shared expiry.
        batch_budget = StreamBudget(cancel=cancel)

        for outcome in normalized:
            remaining = None if expires_at is None else expires_at - time.perf_counter()
            if batch_budget.cancelled() or (remaining is not None and remaining <= 0):
                outcome.skipped = True
                continue
            spec = outcome.spec
            query_start = time.perf_counter()
            try:
                last: PartialKSPRResult | None = None
                for snapshot in self.engine.query_stream(
                    spec.focal,
                    spec.k,
                    method=spec.method,
                    deadline=remaining,
                    max_batches=max_batches,
                    cancel=cancel,
                    capture=capture,
                    **spec.option_dict(),
                ):
                    last = snapshot
                if last is not None and last.done:
                    outcome.result = last.to_result()
                elif last is not None:
                    outcome.partial = last
                else:
                    outcome.skipped = True
            except Exception as error:  # noqa: BLE001 - reported per query
                outcome.error = error
            outcome.seconds = time.perf_counter() - query_start

        return BatchReport(
            outcomes=normalized,
            wall_seconds=time.perf_counter() - start,
            cache_hits=self.engine.stats.cache_hits - hits_before,
            cold_queries=self.engine.stats.cold_queries - cold_before,
        )


def run_batch(engine, specs: Iterable[QuerySpec | tuple], max_workers: int | None = None) -> BatchReport:
    """Convenience wrapper: ``QueryBatch(engine, max_workers).run(specs)``."""
    return QueryBatch(engine, max_workers=max_workers).run(specs)
