"""The amortized multi-query kSPR serving engine.

:class:`Engine` prepares a dataset once and serves many queries against the
prepared state, amortising work that :func:`repro.kspr` redoes from scratch
on every call:

* **k-skyband pruning** — an incrementally-maintained
  :class:`~repro.index.skyline.SkybandIndex` stores the exact dominator count
  of every record.  For a query with ``k <= k_max``, competitors dominated by
  ``k`` or more records are excluded before any index is built: by Lemma 6 of
  the paper they can never out-score the focal record inside an answer
  region, so the answer is unchanged while the per-query input shrinks from
  ``n`` towards the k-skyband.
* **prepared per-focal state** — the focal partition, the competitor R-tree
  and the record→hyperplane map are computed once per ``(focal, k)`` and
  reused by later queries (:class:`~repro.core.base.PreparedQuery`).
* **result caching** — an LRU :class:`~repro.engine.cache.ResultCache` keyed
  on ``(dataset fingerprint, focal, k, method, options)`` returns previously
  computed answers outright.
* **incremental updates** — :meth:`Engine.insert` / :meth:`Engine.delete`
  patch the dominator counts, the shared aggregate R-tree and the caches in
  place.  Cache entries are invalidated *only* when the updated record can
  actually influence their answer; unaffected entries keep serving.

The per-entry invalidation rule, for an entry answering ``(focal, k)`` and an
updated record ``r``:

1. ``r`` dominated by (or equal to) the focal record — the partitioning step
   discards ``r`` for every weight vector, the entry is untouched;
2. ``r`` dominates the focal record — the dominator count ``D`` (and hence
   every reported rank, and possibly emptiness) changes: drop the entry;
3. ``r`` is a competitor with fewer than ``k`` dominators — it belongs to the
   entry's (pruned) competitor set: drop the entry;
4. ``r`` is a competitor with ``>= k`` dominators — it was pruned anyway; the
   entry is dropped only if the update moved some *other* competitor across
   the k-skyband boundary (its dominator count crossed ``k``), which would
   change the pruned input of a cold re-run.  (By transitivity of dominance,
   every dominator of ``r`` also dominates whatever ``r`` dominates, so such
   a crossing provably cannot happen — the check is kept as a cheap safety
   net rather than a live code path.)

Rules 1–4 keep cached results byte-identical to what a cold re-run against
the current dataset would produce.

**Approximate serving** — :meth:`Engine.query` with ``approx=`` (or
``method="sample"``) serves the Monte Carlo estimate of :mod:`repro.approx`
through the same machinery: the prepared focal partition (with its k-skyband
pruned competitor slice, sound for the top-k indicator by Lemma 6) feeds the
sample classifier, the :class:`~repro.approx.ApproxKSPRResult` is cached
under the same tolerance-aware key scheme — with the accuracy contract
(epsilon, delta, seed, mode, chunk) in the key so different contracts never
alias — and rules 1–4 govern its invalidation exactly as for exact answers.

**Anytime serving** — :meth:`Engine.query_stream` answers a query as a stream
of :class:`~repro.core.result.PartialKSPRResult` snapshots (regions are
yielded as soon as Lemma 5 certifies them) under a ``deadline`` /
``max_batches`` / cancellation budget.  A truncated stream is checkpointed in
a :class:`~repro.engine.cache.PartialStore` keyed exactly like the result
cache (fingerprint, focal, k, method, tolerance-aware options), so
re-issuing the query warm-starts from the paused frontier; a completed
stream installs its result in the ordinary result cache, where subsequent
:meth:`query` calls hit.  Partial checkpoints obey the same rules 1–4 on
updates: entries the update provably cannot affect stay resumable, the rest
are dropped.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

import numpy as np

from ..approx.result import ApproxKSPRResult
from ..core.base import PreparedQuery
from ..core.bounds import BoundsMode
from ..core.query import resolve_method, validate_query
from ..core.result import KSPRResult, PartialKSPRResult
from ..exceptions import InvalidDatasetError, InvalidQueryError, ReproError, SnapshotError
from ..geometry.halfspace import Hyperplane
from ..index.rtree import AggregateRTree
from ..index.skyline import SkybandDelta, SkybandIndex
from ..index.skyline import skyline as bbs_skyline
from ..obs.metrics import MetricsRegistry, stats_to_registry, use_registry
from ..obs.profile import QueryProfile
from ..obs.trace import Tracer, current_tracer, use_tracer
from ..records import Dataset, FocalPartition, dominates
from ..robust import Tolerance, resolve_tolerance
from .cache import CacheEntry, PartialEntry, PartialStore, ResultCache, options_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..live.session import LiveSession
    from ..live.standing import StandingQuery
    from ..live.updates import AppliedBatch, UpdateBatch, UpdateOp
    from ..snapshot.store import SnapshotStore

__all__ = ["Engine", "EngineStats"]

#: Preference-space tag used to segregate hyperplane caches (a transformed-
#: space hyperplane and an original-space one differ for the same record).
_TRANSFORMED = "transformed"
_ORIGINAL = "original"


@dataclass
class EngineStats:
    """Serving-side counters (the per-query :class:`QueryStats` still travel
    with each result)."""

    queries: int = 0
    cache_hits: int = 0
    cold_queries: int = 0
    prepared_builds: int = 0
    prepared_reuses: int = 0
    inserts: int = 0
    deletes: int = 0
    entries_invalidated: int = 0
    entries_retained: int = 0
    adopted_results: int = 0
    stream_queries: int = 0
    stream_resumes: int = 0
    partials_saved: int = 0
    partials_invalidated: int = 0
    cold_seconds: float = 0.0
    prepare_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for logs and benchmark JSON."""
        return {
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "cold_queries": self.cold_queries,
            "prepared_builds": self.prepared_builds,
            "prepared_reuses": self.prepared_reuses,
            "inserts": self.inserts,
            "deletes": self.deletes,
            "entries_invalidated": self.entries_invalidated,
            "entries_retained": self.entries_retained,
            "adopted_results": self.adopted_results,
            "stream_queries": self.stream_queries,
            "stream_resumes": self.stream_resumes,
            "partials_saved": self.partials_saved,
            "partials_invalidated": self.partials_invalidated,
            "cold_seconds": self.cold_seconds,
            "prepare_seconds": self.prepare_seconds,
        }


@dataclass
class _PreparedEntry:
    """A cached :class:`PreparedQuery` plus the metadata to invalidate it."""

    prepared: PreparedQuery
    focal: np.ndarray
    k: int
    space: str
    pruned: bool


class _BackingView:
    """Zero-copy, Dataset-shaped view over the engine's row store.

    The shared R-tree indexes row-store *positions*, so it only needs
    ``values`` / ``ids`` lookups with stable positions — not the full
    :class:`~repro.records.Dataset` contract.  Using a view avoids copying
    the whole store on every single-record insert.
    """

    def __init__(self, values: np.ndarray, ids: np.ndarray) -> None:
        self.values = values
        self.ids = ids

    @property
    def cardinality(self) -> int:
        return int(self.values.shape[0])

    @property
    def dimensionality(self) -> int:
        return int(self.values.shape[1])


class Engine:
    """Amortized serving of many kSPR queries over one (evolving) dataset.

    Parameters
    ----------
    dataset:
        Initial records, as a :class:`~repro.records.Dataset` or raw array.
    method:
        Default algorithm for :meth:`query` (any :func:`repro.kspr` method
        name; per-query override supported).
    k_max:
        Largest ``k`` for which the k-skyband fast path applies.  Queries
        with larger ``k`` are still answered (and cached) but run against the
        full competitor set.
    fanout:
        Fanout of every aggregate R-tree the engine builds.
    result_cache_size / prepared_cache_size:
        Capacities of the result LRU and the prepared-state LRU.
    partial_cache_size:
        Capacity of the paused-stream checkpoint LRU (see
        :meth:`query_stream`); evicted checkpoints are closed, not resumed.
    prune_skyband:
        Disable to make cold queries byte-identical to plain ``kspr()`` calls
        (useful for differential testing); pruning never changes the answer,
        only the per-query work.
    tolerance:
        Default numerical policy for every query this engine serves (see
        :mod:`repro.robust`); ``None`` keeps the library default.  A
        per-query ``tolerance=`` option overrides it, and the tolerance in
        effect is part of the result-cache key, so answers computed under
        different policies never alias.

    Notes
    -----
    ``query`` is thread-safe and is what :class:`repro.engine.QueryBatch`
    drives concurrently.  Cached results are returned as-is (not copied):
    treat them as immutable, and note that ``result.stats`` always describes
    the cold run that produced the entry.  Per-query simulated I/O counts are
    reported as deltas on a counter shared per prepared focal, so two cache
    misses racing on the *same* ``(focal, k)`` may attribute node accesses to
    each other — answers are unaffected, only that statistic blurs.
    """

    def __init__(
        self,
        dataset: Dataset | np.ndarray | Sequence[Sequence[float]],
        *,
        method: str = "lpcta",
        k_max: int = 16,
        fanout: int = 32,
        result_cache_size: int = 512,
        prepared_cache_size: int = 64,
        partial_cache_size: int = 32,
        prune_skyband: bool = True,
        tolerance: Tolerance | float | None = None,
    ) -> None:
        if not isinstance(dataset, Dataset):
            dataset = Dataset(np.asarray(dataset, dtype=float))
        if dataset.cardinality == 0:
            raise InvalidDatasetError("the engine needs at least one initial record")
        if k_max < 1:
            raise InvalidQueryError("k_max must be a positive integer")
        self._default_method = resolve_method(method)[0]
        self.k_max = int(k_max)
        self._fanout = int(fanout)
        self._prune = bool(prune_skyband)
        self._tolerance = None if tolerance is None else resolve_tolerance(tolerance)
        self._name = dataset.name

        prepare_start = time.perf_counter()
        self._skyband = SkybandIndex(dataset)
        self._snapshot = dataset
        self._shared_tree = AggregateRTree(dataset, fanout=self._fanout)
        self._result_cache = ResultCache(result_cache_size)
        self._partials = PartialStore(partial_cache_size)
        self._prepared_capacity = int(prepared_cache_size)
        self._prepared: OrderedDict[tuple, _PreparedEntry] = OrderedDict()
        self._hyperplanes: dict[tuple, dict[int, Hyperplane]] = {}
        self._used_ids = {int(record_id) for record_id in dataset.ids}
        self._next_id = dataset.next_record_id()
        # Explicit-id inserts below this floor are rejected.  0 for a fresh
        # engine (no behaviour change); a restored engine raises it to the
        # persisted watermark, because ids issued-then-deleted before the
        # snapshot are invisible to ``_used_ids`` here yet must stay dead.
        self._id_floor = 0
        # The last snapshot id this engine committed or was restored from;
        # the default parent link of the next :meth:`commit`.
        self._committed_parent: str | None = None
        # Standing-query tier: created lazily by :attr:`live` / :meth:`subscribe`;
        # ``_update_seq`` numbers applied update events (single or batch).
        self._live: "LiveSession | None" = None
        self._update_seq = 0
        self._lock = threading.RLock()
        self.stats = EngineStats()
        self.stats.prepare_seconds += time.perf_counter() - prepare_start

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def dataset(self) -> Dataset:
        """Snapshot of the live records (immutable; replaced on updates)."""
        return self._snapshot

    @property
    def fingerprint(self) -> str:
        """Fingerprint of the current dataset state (the cache-key component)."""
        return self._snapshot.fingerprint()

    @property
    def cardinality(self) -> int:
        """Number of live records."""
        return self._snapshot.cardinality

    @property
    def dimensionality(self) -> int:
        """Number of attributes per record."""
        return self._snapshot.dimensionality

    @property
    def default_method(self) -> str:
        """Canonical name of the default query algorithm."""
        return self._default_method

    @property
    def fanout(self) -> int:
        """Fanout of the aggregate R-trees the engine builds."""
        return self._fanout

    @property
    def prune_skyband(self) -> bool:
        """Whether cold queries run against the k-skyband slice."""
        return self._prune

    @property
    def tolerance(self) -> Tolerance | None:
        """Default numerical policy of this engine (None = library default)."""
        return self._tolerance

    def _effective_options(self, options: dict, method_name: str | None = None) -> dict:
        """Canonical per-query options: engine defaults applied, values resolved.

        The engine-level tolerance is injected when the query did not pass its
        own; whatever tolerance ends up in effect is resolved to a
        :class:`~repro.robust.Tolerance` so the cache key is canonical (a
        float and its equivalent policy never produce two entries).  For the
        sampling method, the accuracy-contract fields are expanded to the
        full :class:`~repro.approx.ApproxSpec` (defaults included), so the
        ``approx=`` and ``method="sample"`` spellings of one query always
        share a single cache entry.
        """
        options = dict(options)
        if isinstance(options.get("bounds_mode"), str):
            options["bounds_mode"] = BoundsMode(options["bounds_mode"])
        if "tolerance" in options:
            if options["tolerance"] is not None:
                options["tolerance"] = resolve_tolerance(options["tolerance"])
            else:
                del options["tolerance"]
        if "tolerance" not in options and self._tolerance is not None:
            options["tolerance"] = self._tolerance
        if method_name == "sample_kspr":
            from ..approx.estimator import ApproxSpec  # local: engine <-> approx

            # ``warn`` never changes the answer (admission already warned) —
            # drop it so it cannot split the cache key; every contract field
            # (max_samples included) is then expanded to the full spec.
            options.pop("warn", None)
            overrides = {
                name: options.pop(name)
                for name in list(options)
                if name in ApproxSpec.__dataclass_fields__
            }
            options.update(ApproxSpec(**overrides).as_options())
        return options

    def canonical_key(
        self,
        focal: np.ndarray | Sequence[float],
        k: int,
        method: str | None = None,
        options: dict | None = None,
        fingerprint: str | None = None,
    ) -> tuple:
        """The cache key this query would be served under, without computing it.

        Two queries share an answer exactly when their canonical keys are
        equal: the key folds in the dataset fingerprint, the focal bytes,
        ``k``, the resolved method name and the canonicalised options (engine
        defaults applied, tolerances resolved, ``approx=`` spellings expanded
        — the same normalisation :meth:`query` performs before its cache
        lookup).  Serving layers use this for **single-flight de-duplication**:
        concurrent identical requests collapse onto one execution by keying
        their in-flight table on the canonical key.  ``fingerprint`` pins the
        key to a specific dataset state (default: the current one).
        """
        method_name, _ = resolve_method(method or self._default_method)
        focal_array = np.asarray(focal, dtype=float)
        opts = options_key(self._effective_options(dict(options or {}), method_name))
        with self._lock:
            if fingerprint is None:
                fingerprint = self._snapshot.fingerprint()
        return (fingerprint, focal_array.tobytes(), int(k), method_name, opts)

    def dominator_counts(self) -> np.ndarray:
        """Per-record dominator counts aligned with ``dataset`` rows.

        Served from the incrementally-maintained skyband index, so handing
        them to a :class:`repro.parallel.ShardedExecutor` skips the O(n²)
        recount entirely.
        """
        return self.snapshot_state()[1]

    def snapshot_state(self) -> tuple[Dataset, np.ndarray]:
        """Atomically capture ``(snapshot, dominator counts)``.

        Both are read under one lock acquisition so the counts are guaranteed
        to describe exactly the returned snapshot — the pair a
        :class:`repro.parallel.ShardedExecutor` needs to reproduce the
        engine's pruning even while updates race the caller.
        """
        with self._lock:
            snapshot = self._snapshot
            counts = np.asarray(
                [self._skyband.count_of(int(record_id)) for record_id in snapshot.ids],
                dtype=int,
            )
        return snapshot, counts

    def cached_result(
        self,
        focal: np.ndarray | Sequence[float],
        k: int,
        method: str | None = None,
        options: dict | None = None,
        fingerprint: str | None = None,
    ) -> KSPRResult | None:
        """Peek the result cache: the cached answer, or None — never computes.

        ``fingerprint`` pins the lookup to a specific dataset state (default:
        the current one); a hit is counted as a served query in the engine
        statistics.
        """
        method_name, _ = resolve_method(method or self._default_method)
        focal_array = np.asarray(focal, dtype=float)
        options = self._effective_options(options or {}, method_name)
        opts = options_key(options)
        with self._lock:
            if fingerprint is None:
                fingerprint = self._snapshot.fingerprint()
            key = (fingerprint, focal_array.tobytes(), int(k), method_name, opts)
            cached = self._result_cache.get(key)
            if cached is not None:
                self.stats.queries += 1
                self.stats.cache_hits += 1
            return cached

    def skyband_ids(self, k: int) -> set[int]:
        """Identifiers of the current k-skyband, from the maintained counts."""
        with self._lock:
            return self._skyband.skyband_ids(k)

    def skyline(self) -> list[int]:
        """Identifiers of the current skyline (Pareto-optimal records).

        Served by a BBS traversal of the incrementally-maintained shared
        aggregate R-tree — the "what are the undominated options right now?"
        companion query a serving deployment runs alongside kSPR.
        """
        with self._lock:
            return bbs_skyline(self._shared_tree)

    def cache_info(self) -> dict[str, int | float]:
        """Result-cache counters (size, hits, misses, invalidations, ...).

        .. deprecated::
            Legacy accessor kept for backwards compatibility; the same
            numbers are served under canonical ``engine.result_cache.*``
            names by :meth:`metrics`.
        """
        with self._lock:
            return self._result_cache.info()

    def prepared_info(self) -> dict[str, int]:
        """Prepared-state counters.

        .. deprecated::
            Legacy accessor kept for backwards compatibility; the same
            numbers are served under canonical ``engine.prepared.*`` names
            by :meth:`metrics`.
        """
        with self._lock:
            return {
                "size": len(self._prepared),
                "capacity": self._prepared_capacity,
                "builds": self.stats.prepared_builds,
                "reuses": self.stats.prepared_reuses,
            }

    def metrics_registry(self) -> MetricsRegistry:
        """Every engine-side counter as one canonical :class:`MetricsRegistry`.

        This is the unification point for the historical spellings: the
        :class:`EngineStats` fields, :meth:`cache_info`,
        :meth:`prepared_info` and :meth:`partial_info` all published
        overlapping numbers under private names; here each quantity appears
        exactly once, under its canonical dotted name (``engine.queries``,
        ``engine.result_cache.hits``, ``engine.partial_store.saved``, …).
        Where two legacy sources counted the same event (for example
        ``EngineStats.cache_hits`` and ``cache_info()["hits"]``), the
        registry records it once.  Counters land as :class:`Counter`,
        sizes/capacities/accumulated seconds as :class:`Gauge` — ready for
        :func:`repro.obs.registry_to_prometheus`.
        """
        registry = MetricsRegistry()
        with self._lock:
            stats = self.stats
            counters = {
                "engine.queries": stats.queries,
                "engine.queries.cold": stats.cold_queries,
                "engine.prepared.builds": stats.prepared_builds,
                "engine.prepared.reuses": stats.prepared_reuses,
                "engine.updates.inserts": stats.inserts,
                "engine.updates.deletes": stats.deletes,
                "engine.result_cache.retained": stats.entries_retained,
                "engine.result_cache.adopted": stats.adopted_results,
                "engine.stream.queries": stats.stream_queries,
                "engine.stream.resumes": stats.stream_resumes,
            }
            gauges = {
                "engine.seconds.cold": stats.cold_seconds,
                "engine.seconds.prepare": stats.prepare_seconds,
                "engine.prepared.entries": len(self._prepared),
                "engine.prepared.capacity": self._prepared_capacity,
                "engine.dataset.cardinality": self._snapshot.cardinality,
            }
            cache = self._result_cache.info()
            partials = self._partials.info()
        # The caches' own counters are authoritative for cache-level numbers
        # (EngineStats.cache_hits / partials_saved / entries_invalidated
        # count the same events and are deliberately not re-recorded).
        for legacy, name, kind in (
            ("size", "engine.result_cache.entries", "gauge"),
            ("capacity", "engine.result_cache.capacity", "gauge"),
            ("hits", "engine.result_cache.hits", "counter"),
            ("misses", "engine.result_cache.misses", "counter"),
            ("insertions", "engine.result_cache.insertions", "counter"),
            ("evictions", "engine.result_cache.evictions", "counter"),
            ("invalidated", "engine.result_cache.invalidated", "counter"),
            ("rekeyed", "engine.result_cache.rekeyed", "counter"),
        ):
            (gauges if kind == "gauge" else counters)[name] = cache[legacy]
        for legacy, name, kind in (
            ("size", "engine.partial_store.entries", "gauge"),
            ("capacity", "engine.partial_store.capacity", "gauge"),
            ("saves", "engine.partial_store.saved", "counter"),
            ("resumes", "engine.partial_store.resumes", "counter"),
            ("evictions", "engine.partial_store.evictions", "counter"),
            ("invalidated", "engine.partial_store.invalidated", "counter"),
        ):
            (gauges if kind == "gauge" else counters)[name] = partials[legacy]
        for name, value in counters.items():
            registry.counter(name).inc(value)
        for name, value in gauges.items():
            registry.gauge(name).set(value)
        return registry

    def metrics(self) -> dict[str, float]:
        """Flat ``{canonical name: value}`` snapshot of every engine counter.

        The canonical replacement for reading :attr:`stats`,
        :meth:`cache_info`, :meth:`prepared_info` and :meth:`partial_info`
        separately — one name per number, shared with the exporters and the
        experiment harness.  Equivalent to
        ``self.metrics_registry().snapshot()``.
        """
        return self.metrics_registry().snapshot()

    def profile(
        self,
        focal: np.ndarray | Sequence[float],
        k: int,
        method: str | None = None,
        *,
        workers: int | None = None,
        approx: "object | None" = None,
        **options,
    ) -> QueryProfile:
        """Run one query under a live tracer and metrics registry; report it.

        The query executes exactly like :meth:`query` except that the
        result cache is bypassed (no lookup, no install), so the recorded
        span tree always describes a full cold execution — which is what
        makes the deterministic projection
        (:meth:`~repro.obs.QueryProfile.structure`) byte-identical across
        repeated calls and across worker counts.  The returned
        :class:`~repro.obs.QueryProfile` carries the span tree, the phase
        timings, the canonical per-query metrics, the LP constraint-count
        histogram, and (for ``method="sample"``) the sampler's
        confidence-interval trajectory; ``print(profile)`` renders the
        human-readable report, :meth:`~repro.obs.QueryProfile.as_dict` the
        machine-readable one.
        """
        tracer = Tracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_registry(registry):
            result = self.query(
                focal, k, method=method, workers=workers, approx=approx,
                use_cache=False, **options,
            )
        try:
            regions = len(result)
        except TypeError:  # approximate results measure volume, not regions
            regions = None
        stats_to_registry(result.stats, regions=regions, registry=registry)
        return QueryProfile(result, tracer=tracer, registry=registry)

    # ------------------------------------------------------------------ #
    # querying
    # ------------------------------------------------------------------ #
    def query(
        self,
        focal: np.ndarray | Sequence[float],
        k: int,
        method: str | None = None,
        workers: int | None = None,
        approx: "object | None" = None,
        use_cache: bool = True,
        **options,
    ) -> KSPRResult | ApproxKSPRResult:
        """Answer one kSPR query, reusing every piece of prepared state it can.

        Accepts the same arguments as :func:`repro.kspr`; results are
        identical to a fresh ``kspr()`` call on the current dataset (with
        pruning enabled, identical up to the decomposition of the answer into
        cells — the covered region and the ranks are always the same).

        Parameters
        ----------
        focal, k, method, options:
            The query, exactly as :func:`repro.kspr` takes it.
        workers:
            ``> 1`` accelerates a *cold* ``"cta"`` query by sharding its
            CellTree expansion across worker processes
            (:func:`repro.parallel.parallel_cta`), and a ``"sample"`` query
            by classifying its seeded sample chunks in parallel; either way
            the answer — and hence the cached entry — is identical to the
            single-process run, so ``workers`` deliberately does not
            participate in the cache key.  Other methods run serially
            regardless of ``workers``.
        approx:
            Request the sampling-based approximate mode: an
            :class:`~repro.approx.ApproxSpec`, a dict of its fields, a bare
            epsilon, or ``True`` for defaults.  Equivalent to
            ``method="sample"`` with the spec's fields as options; the
            returned :class:`~repro.approx.ApproxKSPRResult` is cached under
            the same tolerance-aware key scheme as exact answers (epsilon,
            delta, seed, mode and chunk are all part of the key, so
            different accuracy contracts never alias) and obeys the same
            rules-1-4 update invalidation.
        use_cache:
            ``False`` bypasses the result cache entirely — no lookup, no
            install — forcing a full cold execution.  Used by
            :meth:`profile` so a traced run always records the complete
            span tree; answers are unaffected either way.

        Returns
        -------
        KSPRResult or ApproxKSPRResult
            The exact answer, or the sampled estimate when ``approx`` /
            ``method="sample"`` was requested.

        Raises
        ------
        InvalidQueryError
            For malformed query inputs or an invalid accuracy contract.
        """
        if approx is not None:
            from ..approx.estimator import ApproxSpec  # local import: engine <-> approx

            spec = ApproxSpec.coerce(approx)
            if method is not None and resolve_method(method)[0] != "sample_kspr":
                raise InvalidQueryError(
                    f"approx={approx!r} conflicts with method={method!r}; "
                    "the approximate mode is method='sample'"
                )
            conflicts = set(options) & set(ApproxSpec.__dataclass_fields__)
            if conflicts:
                raise InvalidQueryError(
                    f"approx= conflicts with the explicit option(s) "
                    f"{sorted(conflicts)}; declare the accuracy contract in "
                    "one place"
                )
            method = "sample"
            options = {**spec.as_options(), **options}
        method_name, method_func = resolve_method(method or self._default_method)
        with self._lock:
            snapshot = self._snapshot
        focal_array = validate_query(snapshot, focal, k)
        options = self._effective_options(options, method_name)
        opts = options_key(options)
        key = (snapshot.fingerprint(), focal_array.tobytes(), int(k), method_name, opts)

        tracer = current_tracer()
        with tracer.span("engine.query", method=method_name, k=int(k)) as query_span:
            with tracer.span("engine.cache.lookup", bypassed=not use_cache) as lookup:
                with self._lock:
                    self.stats.queries += 1
                    cached = self._result_cache.get(key) if use_cache else None
                    if cached is not None:
                        self.stats.cache_hits += 1
                lookup.set(outcome="hit" if cached is not None else "miss")
            if cached is not None:
                query_span.set(cache="hit")
                return cached
            query_span.set(cache="miss")

            space = _ORIGINAL if method_name in ("op_cta", "olp_cta") else options.get(
                "space", _TRANSFORMED
            )
            with tracer.span("engine.prepare") as prepare_span:
                entry, snapshot = self._prepared_for(
                    focal_array, int(k), space, build_tree=method_name != "sample_kspr"
                )
                prepare_span.set(
                    space=space,
                    pruned=entry.pruned,
                    competitors=int(entry.prepared.partition.competitors.cardinality),
                )

            with tracer.span("engine.execute") as execute_span:
                cold_start = time.perf_counter()
                if workers is not None and workers > 1 and method_name == "cta":
                    from ..parallel.subtree import parallel_cta  # local import: avoids a cycle

                    result = parallel_cta(
                        snapshot,
                        focal_array,
                        int(k),
                        workers=workers,
                        prepared=entry.prepared,
                        **options,
                    )
                else:
                    call_options = dict(options)
                    if method_name == "sample_kspr":
                        # Admission already validated (and possibly warned about)
                        # the query; the estimator must not warn a second time.
                        # Neither flag participates in the cache key (warn is
                        # stripped by _effective_options; chunk substreams make the
                        # estimate identical for every worker count).
                        call_options["warn"] = False
                        if workers is not None and workers > 1:
                            call_options["workers"] = workers
                    result = method_func(
                        snapshot, focal_array, int(k), prepared=entry.prepared, **call_options
                    )
                cold_seconds = time.perf_counter() - cold_start
                if tracer.enabled:
                    stats = result.stats
                    # Only counters invariant across worker counts may be
                    # deterministic attributes.  LP call totals and processed
                    # records vary slightly between the serial and sharded
                    # expansions (shards probe their local frontiers), so
                    # they travel as volatile fields with the timings.
                    execute_span.set(competitors=int(stats.competitor_records))
                    try:
                        execute_span.set(regions=len(result))
                    # analyze: ignore[EXC001] -- approx results have no region count (len() unsupported)
                    except TypeError:
                        pass
                    execute_span.note(
                        algorithm=stats.algorithm,
                        seconds=cold_seconds,
                        batches=int(stats.batches),
                        processed=int(stats.processed_records),
                        lp_feasibility=int(stats.lp.feasibility_calls),
                        lp_optimize=int(stats.lp.optimize_calls),
                    )

        with self._lock:
            self.stats.cold_queries += 1
            self.stats.cold_seconds += cold_seconds
            # Guard against a concurrent update: never cache a result computed
            # against a superseded dataset state.
            if use_cache and snapshot is self._snapshot:
                self._result_cache.put(
                    CacheEntry(
                        fingerprint=snapshot.fingerprint(),
                        focal=focal_array,
                        k=int(k),
                        method=method_name,
                        opts=opts,
                        result=result,
                        pruned=entry.pruned,
                    )
                )
                # The full result shadows any paused-stream checkpoint under
                # this key; release it rather than let it linger unreachable.
                self._partials.discard(key)
        return result

    def query_stream(
        self,
        focal: np.ndarray | Sequence[float],
        k: int,
        method: str | None = None,
        *,
        deadline: float | None = None,
        deadline_at: float | None = None,
        max_batches: int | None = None,
        cancel: threading.Event | Callable[[], bool] | None = None,
        workers: int | None = None,
        capture: bool = True,
        **options,
    ) -> Iterator[PartialKSPRResult]:
        """Answer one kSPR query as an anytime stream of partial results.

        Yields a :class:`~repro.core.result.PartialKSPRResult` after every
        cooperative work unit (batch / chunk / shard commit): certified
        regions appear as soon as Lemma 5 proves them final, each snapshot
        carries a monotonically tightening ``[lower, upper]`` impact bracket,
        and the terminal snapshot (``done=True``) wraps the exact result —
        which is also installed in the result cache, so a follow-up
        :meth:`query` hits.

        ``deadline`` (seconds), ``deadline_at`` (an absolute
        :func:`time.perf_counter` instant — the form a serving layer
        propagates one request deadline through, charging queueing and
        compute against a single budget; the earlier of the two wins when
        both are given), ``max_batches`` and ``cancel`` bound the
        stream; when the budget runs out (or the consumer abandons the
        iterator) the suspended query is checkpointed in the partial-result
        cache under the same tolerance-aware key as the result cache.
        Re-issuing the query — same focal, ``k``, method and options against
        an unchanged (or provably unaffected, rules 1–4) dataset state —
        warm-starts from the checkpoint, and the final answer is
        byte-identical to an uninterrupted run.  ``workers`` (> 1) streams a
        ``"cta"`` query through the sharded parallel path, merging per-worker
        region streams in deterministic depth-first order.  ``capture=False``
        skips the per-tick frontier freeze (snapshots then report the
        trivial upper bound) for consumers that never read impact brackets.

        A checkpointed ``workers > 1`` stream keeps its suspended worker
        pool alive — already dispatched shard groups finish in the
        background and are collected on resume.  Budget ``workers``
        checkpoints accordingly (``partial_cache_size`` bounds how many can
        accumulate; eviction, invalidation, or a shadowing full result
        closes them).
        """
        # Validate the query AND the budget eagerly so errors raise at call
        # time, not at the first ``next()`` — a call that never starts also
        # never saves a ghost checkpoint.
        from ..stream.anytime import StreamBudget  # local: engine <-> stream

        StreamBudget(deadline=deadline, max_batches=max_batches, deadline_at=deadline_at)
        method_name, _ = resolve_method(method or self._default_method)
        if method_name == "sample_kspr":
            raise InvalidQueryError(
                "method='sample' has no streaming implementation; use "
                "query(approx=...) — the adaptive sampling mode already "
                "refines its estimate incrementally"
            )
        with self._lock:
            snapshot = self._snapshot
        focal_array = validate_query(snapshot, focal, k)
        options = self._effective_options(options, method_name)
        opts = options_key(options)
        return self._stream(
            snapshot, focal_array, int(k), method_name, options, opts,
            deadline=deadline, deadline_at=deadline_at, max_batches=max_batches,
            cancel=cancel, workers=workers, capture=capture,
        )

    def _stream(
        self,
        snapshot: Dataset,
        focal_array: np.ndarray,
        k: int,
        method_name: str,
        options: dict,
        opts: tuple,
        *,
        deadline: float | None,
        deadline_at: float | None,
        max_batches: int | None,
        cancel: threading.Event | Callable[[], bool] | None,
        workers: int | None,
        capture: bool,
    ) -> Iterator[PartialKSPRResult]:
        """Generator behind :meth:`query_stream` (checkout → advance → checkpoint)."""
        from ..stream.anytime import AnytimeQuery, stream_kspr  # local: engine <-> stream

        fingerprint = snapshot.fingerprint()
        key = (fingerprint, focal_array.tobytes(), k, method_name, opts)
        pruned = self._prune and k <= self.k_max
        tracer = current_tracer()

        with self._lock:
            self.stats.queries += 1
            self.stats.stream_queries += 1
            cached = self._result_cache.get(key)
            checkpoint = None
            if cached is not None:
                self.stats.cache_hits += 1
                # A full result shadows any checkpoint under the same key
                # forever; release the orphan's resources now.
                self._partials.discard(key)
            else:
                checkpoint = self._partials.peek(key)
                if checkpoint is not None and capture and not checkpoint.capture:
                    # The checkpoint never captures frontiers, but this
                    # caller wants brackets: resuming would silently serve
                    # only the trivial upper bound.  Drop it and recompute
                    # (without counting a resume that never happened).
                    self._partials.discard(key)
                    checkpoint = None
                elif checkpoint is not None:
                    checkpoint = self._partials.pop(key)
                    self.stats.stream_resumes += 1
        if tracer.enabled:
            # Created and finished immediately (never entered as a context
            # manager): the generator frame runs in its consumer's context,
            # so entering here would leak the active-span contextvar across
            # yields.
            outcome = (
                "cached" if cached is not None
                else "resume" if checkpoint is not None
                else "cold"
            )
            checkout = tracer.span("engine.stream.checkout", method=method_name, k=int(k))
            checkout.set(outcome=outcome)
            checkout.finish()
        if cached is not None:
            yield PartialKSPRResult.from_result(cached)
            return

        if checkpoint is not None:
            from ..snapshot.persist import ReplayCheckpoint  # local: engine <-> snapshot

            anytime = checkpoint.query
            fingerprint = checkpoint.fingerprint
            # The suspended producers keep their original capture mode; a
            # re-checkpoint must record that, not the caller's flag.
            capture = checkpoint.capture
            if isinstance(anytime, ReplayCheckpoint):
                # A persisted checkpoint survived a restart as a replay
                # recipe, not a live generator.  Rebuild the stream through
                # the ordinary cold path and fast-forward exactly the
                # persisted number of work units: the tick stream is
                # deterministic for a fixed (state, focal, k, method,
                # options), so this lands on the very frontier the original
                # process was suspended at.
                replay = anytime
                replay_options = dict(replay.options)
                space = _ORIGINAL if method_name in ("op_cta", "olp_cta") else (
                    replay_options.get("space", _TRANSFORMED)
                )
                entry, prepared_snapshot = self._prepared_for(focal_array, k, space)
                if prepared_snapshot.fingerprint() != fingerprint:
                    # An update raced the resume; the recipe's tick cursor
                    # describes a superseded state.  Re-key to the state the
                    # prepared entry is consistent with and run cold —
                    # slower, never wrong.
                    snapshot = prepared_snapshot
                    fingerprint = snapshot.fingerprint()
                    key = (fingerprint, focal_array.tobytes(), k, method_name, opts)
                    replay = None
                anytime = stream_kspr(
                    prepared_snapshot,
                    focal_array,
                    k,
                    method=method_name,
                    prepared=entry.prepared,
                    capture=capture,
                    **replay_options,
                )
                if replay is not None and replay.ticks > 0:
                    for _ in anytime.advance(max_batches=replay.ticks):
                        pass
        else:
            space = _ORIGINAL if method_name in ("op_cta", "olp_cta") else options.get(
                "space", _TRANSFORMED
            )
            entry, prepared_snapshot = self._prepared_for(focal_array, k, space)
            if prepared_snapshot is not snapshot:
                # An update raced query admission: stream against the state
                # the prepared entry describes and re-key accordingly.
                snapshot = prepared_snapshot
                fingerprint = snapshot.fingerprint()
                key = (fingerprint, focal_array.tobytes(), k, method_name, opts)
            anytime = stream_kspr(
                snapshot,
                focal_array,
                k,
                method=method_name,
                workers=workers if method_name == "cta" else None,
                prepared=entry.prepared,
                capture=capture,
                **options,
            )

        try:
            for partial in anytime.advance(
                deadline=deadline, deadline_at=deadline_at,
                max_batches=max_batches, cancel=cancel,
            ):
                if partial.done:
                    result = anytime.result()
                    with self._lock:
                        self.stats.cold_queries += 1
                        # Never cache a result whose dataset state has been
                        # superseded mid-stream.
                        if self._snapshot.fingerprint() == fingerprint:
                            self._result_cache.put(
                                CacheEntry(
                                    fingerprint=fingerprint,
                                    focal=focal_array,
                                    k=k,
                                    method=method_name,
                                    opts=opts,
                                    result=result,
                                    pruned=pruned,
                                )
                            )
                    yield PartialKSPRResult.from_result(result, batches=partial.batches)
                else:
                    yield partial
        finally:
            if anytime.failed:
                # A crashed stream must never be checkpointed: resuming it
                # would silently serve a truncated answer as complete.
                anytime.close()
            elif not anytime.done:
                with self._lock:
                    # No checkpoint if the dataset state moved on, or if a
                    # concurrent query already installed the full result —
                    # every lookup would hit that first, orphaning the
                    # checkpoint (and any suspended worker pool) forever.
                    if self._snapshot.fingerprint() == fingerprint and key not in self._result_cache:
                        self._partials.put(
                            PartialEntry(
                                fingerprint=fingerprint,
                                focal=focal_array,
                                k=k,
                                method=method_name,
                                opts=opts,
                                query=anytime,
                                pruned=pruned,
                                capture=capture,
                                options=dict(options),
                                workers=workers,
                            )
                        )
                        self.stats.partials_saved += 1
                        if tracer.enabled:
                            saved = tracer.span(
                                "engine.stream.checkpoint", method=method_name, k=int(k)
                            )
                            saved.note(batches=int(anytime._batches))
                            saved.finish()
                    else:
                        # An update the stream never saw raced it: the paused
                        # state may describe a stale competitor set, drop it.
                        anytime.close()

    def partial_info(self) -> dict[str, int]:
        """Paused-stream checkpoint counters (size, saves, resumes, ...).

        .. deprecated::
            Legacy accessor kept for backwards compatibility; the same
            numbers are served under canonical ``engine.partial_store.*``
            names by :meth:`metrics`.
        """
        with self._lock:
            return self._partials.info()

    def adopt_result(
        self,
        fingerprint: str,
        focal: np.ndarray | Sequence[float],
        k: int,
        method: str | None,
        options: dict,
        result: KSPRResult,
    ) -> bool:
        """Install an externally computed result into the result cache.

        Used by :class:`repro.engine.QueryBatch` (``workers=N``) to make
        answers computed in worker processes serve future :meth:`query` calls
        as cache hits.  ``fingerprint`` must identify the dataset state the
        result was computed against; the entry is rejected (returns False)
        when an update has superseded that state, so a stale answer can never
        enter the cache.
        """
        method_name, _ = resolve_method(method or self._default_method)
        focal_array = np.asarray(focal, dtype=float)
        opts = options_key(self._effective_options(options, method_name))
        with self._lock:
            if fingerprint != self._snapshot.fingerprint():
                return False
            pruned = self._prune and int(k) <= self.k_max
            self._result_cache.put(
                CacheEntry(
                    fingerprint=fingerprint,
                    focal=focal_array,
                    k=int(k),
                    method=method_name,
                    opts=opts,
                    result=result,
                    pruned=pruned,
                )
            )
            self._partials.discard(
                (fingerprint, focal_array.tobytes(), int(k), method_name, opts)
            )
            self.stats.adopted_results += 1
            return True

    # ------------------------------------------------------------------ #
    # persistence (repro.snapshot)
    # ------------------------------------------------------------------ #
    @property
    def committed_snapshot(self) -> str | None:
        """Snapshot id this engine last committed, or was restored from."""
        with self._lock:
            return self._committed_parent

    def commit(self, store: "SnapshotStore", parent: str | None = None) -> str:
        """Persist the current dataset state — and both caches — to ``store``.

        Commits the live dataset as an immutable, content-addressed snapshot
        (idempotent: an unchanged state dedupes onto its existing id) and
        persists the result cache plus every resumable paused-stream
        checkpoint keyed on it, so a later
        :meth:`from_snapshot` restores a *warm* engine.  ``parent`` defaults
        to the engine's previous commit, chaining successive commits into a
        lineage; returns the snapshot id.
        """
        with self._lock:
            if parent is None:
                parent = self._committed_parent
            snapshot_id = store.commit(self._snapshot, parent=parent)
            store.save_caches(
                snapshot_id, self._result_cache.entries(), self._partials.entries()
            )
            self._committed_parent = snapshot_id
            return snapshot_id

    @classmethod
    def from_snapshot(
        cls,
        store: "SnapshotStore",
        snapshot_id: str | None = None,
        *,
        replay_to: str | None = None,
        **engine_options,
    ) -> "Engine":
        """Restore a warm engine from a committed snapshot in a fresh process.

        The restored engine is indistinguishable from the one that committed:
        same dataset (fingerprint-verified checkout), same id allocator
        watermark (a dead max-id stays dead), and — when caches were
        persisted — the same result-cache entries (served as hits, byte-
        identical) and paused-stream checkpoints (resumed from their replay
        recipes, see :class:`~repro.snapshot.ReplayCheckpoint`).

        ``replay_to`` names a *newer* snapshot in the same store: the
        insert/delete diff between the two versions is replayed through the
        ordinary :meth:`insert` / :meth:`delete` path, so the restored
        caches are reconciled by the precise rules-1-4 invalidation —
        entries the interim updates provably cannot affect keep serving —
        instead of being flushed wholesale.  If the replay cannot reproduce
        the target state exactly (verified against the committed
        fingerprint), the engine falls back to a plain checkout of
        ``replay_to``, trading the caches for guaranteed-correct state.

        ``snapshot_id`` defaults to the store's latest commit;
        ``engine_options`` are forwarded to the constructor (method, k_max,
        cache sizes, ...).
        """
        if snapshot_id is None:
            snapshot_id = store.latest()
            if snapshot_id is None:
                raise SnapshotError("cannot restore: the store holds no snapshots")
        engine = cls._restore_at(store, snapshot_id, engine_options)
        for entry in store.load_result_entries(snapshot_id):
            engine._result_cache.put(entry)
        for entry in store.load_partial_entries(snapshot_id):
            engine._partials.put(entry)
        if replay_to is not None and replay_to != snapshot_id:
            target = store.meta(replay_to)
            try:
                diff = store.diff(snapshot_id, replay_to)
                for update in diff.updates:
                    if update.op == "delete":
                        engine.delete(update.record_id)
                    else:
                        engine.insert(update.values, record_id=update.record_id)
                    store.replayed_updates += 1
                replayed = engine.fingerprint == target.fingerprint
            except (ReproError, KeyError):
                # A diff the update path cannot replay (id below the floor,
                # emptied dataset, inconsistent stores): fall back below.
                replayed = False
            if replayed:
                engine._stamp_watermark(target.id_high_watermark)
                engine._committed_parent = replay_to
            else:
                store.restore_fallbacks += 1
                engine = cls._restore_at(store, replay_to, engine_options)
        store.restores += 1
        return engine

    @classmethod
    def _restore_at(cls, store: "SnapshotStore", snapshot_id: str, engine_options: dict) -> "Engine":
        """Cold-restore an engine at one committed snapshot (no caches)."""
        dataset = store.checkout(snapshot_id)
        engine = cls(dataset, **engine_options)
        engine._id_floor = dataset.id_high_watermark
        engine._committed_parent = snapshot_id
        return engine

    def _stamp_watermark(self, watermark: int) -> None:
        """Adopt a persisted id watermark after a successful diff replay.

        Records inserted *and* deleted between two commits are invisible to
        the content diff yet consumed identifiers, so the replayed engine's
        allocator can trail the target snapshot's watermark; the committed
        value is authoritative.  The id floor rises with it — every id under
        the target watermark may have lived and died before the restore.
        """
        watermark = int(watermark)
        with self._lock:
            if watermark > self._next_id:
                self._next_id = watermark
                self._snapshot = self._skyband.snapshot(
                    self._name, id_high_watermark=self._next_id
                )
            self._id_floor = max(self._id_floor, watermark)

    def _prepared_for(
        self, focal: np.ndarray, k: int, space: str, build_tree: bool = True
    ) -> tuple[_PreparedEntry, Dataset]:
        """Fetch or build the prepared state for one ``(focal, k, space)``.

        Returns the entry together with the dataset snapshot it is consistent
        with — the caller must run the query against exactly that snapshot.
        The focal partition and the k-skyband slice are computed *under the
        engine lock* so they always describe one dataset state; only the
        expensive R-tree build runs unlocked.

        Entries are keyed on the *band* rather than ``k`` directly: pruned
        entries depend on ``k`` (the competitor set is the k-skyband slice),
        but unpruned ones (``k > k_max`` or pruning disabled) share a single
        competitor tree across every ``k``.

        ``build_tree=False`` (the sampling path) prepares only the focal
        partition: the sampler never reads the competitor R-tree or the
        hyperplane cache, and at the large ``n`` the approximate mode
        targets, the STR bulk load would dominate the whole query.  Tree-less
        entries live under their own key so an exact query can never pick
        one up.
        """
        pruned = self._prune and k <= self.k_max
        band = k if pruned else 0
        pkey = (focal.tobytes(), band, space) if build_tree else (
            focal.tobytes(), band, space, "sample"
        )
        prepare_start = time.perf_counter()
        with self._lock:
            snapshot = self._snapshot
            entry = self._prepared.get(pkey)
            if entry is not None:
                self._prepared.move_to_end(pkey)
                self.stats.prepared_reuses += 1
                return entry, snapshot
            # The exact and sampling entries of one (focal, band, space)
            # share the identical pruned partition; reuse the sibling's
            # (valid for exactly the dataset states this entry would be —
            # both are invalidated together by rules 1-4) instead of
            # redoing the O(n d) partition and the skyband filter.
            sibling_key = (
                (focal.tobytes(), band, space, "sample")
                if build_tree
                else (focal.tobytes(), band, space)
            )
            sibling = self._prepared.get(sibling_key)
            if sibling is not None:
                partition = sibling.prepared.partition
            else:
                partition = snapshot.partition_by_focal(focal)
                if pruned:
                    band_ids = self._skyband.skyband_ids(k)
                    competitors = partition.competitors
                    keep = [
                        i
                        for i, record_id in enumerate(competitors.ids)
                        if int(record_id) in band_ids
                    ]
                    if len(keep) < competitors.cardinality:
                        partition = FocalPartition(
                            competitors=competitors.subset(keep),
                            dominators=partition.dominators,
                            dominated=partition.dominated,
                        )
        # The heavy part runs outside the lock so updates and other queries
        # are not serialised behind the STR bulk load.
        tree = (
            AggregateRTree(partition.competitors, fanout=self._fanout)
            if build_tree
            else None
        )
        prepare_seconds = time.perf_counter() - prepare_start

        with self._lock:
            if snapshot is not self._snapshot:
                # An insert/delete raced this build: the entry is consistent
                # with the snapshot captured above, so hand it to the caller
                # (which runs against that snapshot), but never register it —
                # a later query would otherwise mix it with the *new* dataset
                # state.
                return (
                    _PreparedEntry(
                        prepared=PreparedQuery(partition, tree, None),
                        focal=focal.copy(),
                        k=band,
                        space=space,
                        pruned=pruned,
                    ),
                    snapshot,
                )
            raced = self._prepared.get(pkey)
            if raced is not None:
                self._prepared.move_to_end(pkey)
                self.stats.prepared_reuses += 1
                return raced, snapshot
            if build_tree:
                hkey = (focal.tobytes(), space)
                hyperplanes = self._hyperplanes.setdefault(hkey, {})
            else:
                hyperplanes = None
            entry = _PreparedEntry(
                prepared=PreparedQuery(partition, tree, hyperplanes),
                focal=focal.copy(),
                k=band,
                space=space,
                pruned=pruned,
            )
            self._prepared[pkey] = entry
            self.stats.prepared_builds += 1
            self.stats.prepare_seconds += prepare_seconds
            while len(self._prepared) > self._prepared_capacity:
                _, evicted = self._prepared.popitem(last=False)
                self._drop_hyperplanes_if_unused(evicted)
            return entry, snapshot

    def _drop_hyperplanes_if_unused(self, evicted: _PreparedEntry) -> None:
        """Release a focal's hyperplane cache once nothing references it.

        Only entries that actually hold a hyperplane cache count as
        references — tree-less sampling entries never touch it, so they must
        not pin a focal's hyperplanes alive past the last exact entry.
        """
        hkey = (evicted.focal.tobytes(), evicted.space)
        for entry in self._prepared.values():
            if entry.prepared.hyperplane_cache is not None and (
                entry.focal.tobytes(), entry.space
            ) == hkey:
                return
        self._hyperplanes.pop(hkey, None)

    # ------------------------------------------------------------------ #
    # incremental updates
    # ------------------------------------------------------------------ #
    def insert(
        self, values: np.ndarray | Sequence[float], record_id: int | None = None
    ) -> int:
        """Add one record, patching indexes and invalidating affected caches.

        Returns the record's stable identifier.  Identifiers are never
        reused, so an explicit ``record_id`` that was ever live (even if
        since deleted) is rejected.
        """
        row = np.asarray(values, dtype=float)
        with self._lock:
            if record_id is None:
                record_id = self._next_id
            record_id = int(record_id)
            if record_id in self._used_ids:
                raise InvalidDatasetError(
                    f"record id {record_id} was already used; ids are never recycled"
                )
            if self._id_floor and record_id < self._id_floor:
                raise InvalidDatasetError(
                    f"record id {record_id} is below this restored engine's id "
                    f"floor ({self._id_floor}); every id under the floor may "
                    "have been issued (and deleted) before the snapshot, and "
                    "ids are never recycled"
                )
            delta = self._skyband.insert(row, record_id)
            self._used_ids.add(record_id)
            self._next_id = max(self._next_id, record_id + 1)
            self._shared_tree.rebind_dataset(self._backing_view())
            self._shared_tree.insert_position(delta.position)
            pairs = ((delta, True),)
            self._finish_update_batch(pairs)
            self.stats.inserts += 1
        self._notify_live(pairs)
        return record_id

    def delete(self, record_id: int) -> None:
        """Remove one record, patching indexes and invalidating affected caches."""
        with self._lock:
            if self._skyband.active_count <= 1:
                raise InvalidDatasetError("cannot delete the last remaining record")
            delta = self._skyband.delete(record_id)
            self._shared_tree.delete_position(delta.position)
            pairs = ((delta, False),)
            self._finish_update_batch(pairs)
            self.stats.deletes += 1
        self._notify_live(pairs)

    def apply_updates(self, updates: "UpdateBatch | Sequence[UpdateOp]") -> "AppliedBatch":
        """Apply a batch of inserts/deletes as one atomic snapshot swap.

        The whole batch is validated up front (id discipline, dimensions,
        finiteness, never emptying the dataset), then applied under a
        single lock acquisition with exactly one snapshot swap at the end
        — intermediate states never exist as fingerprints, so a
        concurrent reader sees either the pre-batch or the post-batch
        dataset.  Cache reconciliation unions the per-update rules-1–4
        verdicts, each evaluated against its own sequential-point-in-time
        skyband delta, which makes the batched invalidation equivalent to
        applying the updates one at a time.  Standing queries
        (:meth:`subscribe`) are classified and repaired before this
        returns; the returned :class:`~repro.live.AppliedBatch` carries
        the assigned record ids and both fingerprints.
        """
        from ..live.updates import AppliedBatch, UpdateBatch, UpdateOp  # local: engine <-> live

        batch = UpdateBatch.coerce(updates)
        with self._lock:
            base_fingerprint = self._snapshot.fingerprint()
            if not len(batch):
                return AppliedBatch(
                    ops=(), pairs=(), base_fingerprint=base_fingerprint,
                    fingerprint=base_fingerprint, seq=self._update_seq,
                )
            self._validate_batch(batch)
            pairs: list[tuple[SkybandDelta, bool]] = []
            assigned: list[UpdateOp] = []
            for op in batch.ops:
                if op.op == "insert":
                    rid = self._next_id if op.record_id is None else int(op.record_id)
                    delta = self._skyband.insert(np.asarray(op.values, dtype=float), rid)
                    self._used_ids.add(rid)
                    self._next_id = max(self._next_id, rid + 1)
                    self._shared_tree.rebind_dataset(self._backing_view())
                    self._shared_tree.insert_position(delta.position)
                    pairs.append((delta, True))
                    self.stats.inserts += 1
                    assigned.append(UpdateOp(op="insert", record_id=rid, values=delta.values))
                else:
                    delta = self._skyband.delete(int(op.record_id))
                    self._shared_tree.delete_position(delta.position)
                    pairs.append((delta, False))
                    self.stats.deletes += 1
                    assigned.append(op)
            frozen = tuple(pairs)
            self._finish_update_batch(frozen)
            applied = AppliedBatch(
                ops=tuple(assigned),
                pairs=frozen,
                base_fingerprint=base_fingerprint,
                fingerprint=self._snapshot.fingerprint(),
                seq=self._update_seq,
            )
        self._notify_live(frozen)
        return applied

    def _validate_batch(self, batch: "UpdateBatch") -> None:
        """Reject the whole batch before any mutation (atomicity guard).

        Simulates the id/liveness bookkeeping op by op so mid-batch
        failures are impossible once application starts: explicit insert
        ids must be fresh (never used, not below a restored floor, not
        claimed twice within the batch), values must match the
        dimensionality and be finite, deletes must target a
        then-live id, and the live count must never reach zero.
        """
        sim_used = set(self._used_ids)
        sim_live = {
            int(rid) for rid in self._skyband.ids_at(self._skyband.active_positions())
        }
        sim_next = self._next_id
        dimensionality = self._snapshot.dimensionality
        for op in batch.ops:
            if op.op == "insert":
                row = np.asarray(op.values, dtype=float)
                if row.shape != (dimensionality,):
                    raise InvalidDatasetError(
                        f"insert has shape {row.shape}, expected ({dimensionality},)"
                    )
                if not np.all(np.isfinite(row)):
                    raise InvalidDatasetError("insert values must be finite")
                rid = sim_next if op.record_id is None else int(op.record_id)
                if rid in sim_used:
                    raise InvalidDatasetError(
                        f"record id {rid} was already used; ids are never recycled"
                    )
                if self._id_floor and rid < self._id_floor:
                    raise InvalidDatasetError(
                        f"record id {rid} is below this restored engine's id "
                        f"floor ({self._id_floor}); ids are never recycled"
                    )
                sim_used.add(rid)
                sim_live.add(rid)
                sim_next = max(sim_next, rid + 1)
            else:
                rid = int(op.record_id)
                if rid not in sim_live:
                    raise InvalidDatasetError(
                        f"cannot delete record id {rid}: not live at that point in the batch"
                    )
                sim_live.remove(rid)
                if not sim_live:
                    raise InvalidDatasetError("cannot delete the last remaining record")

    # ------------------------------------------------------------------ #
    # standing queries (repro.live)
    # ------------------------------------------------------------------ #
    @property
    def live(self) -> "LiveSession":
        """The engine's standing-query session (created lazily)."""
        from ..live.session import LiveSession  # local import: engine <-> live

        with self._lock:
            if self._live is None:
                self._live = LiveSession(self)
            return self._live

    def subscribe(
        self,
        focal: np.ndarray | Sequence[float],
        k: int,
        method: str | None = None,
        *,
        anytime: bool = False,
        **options,
    ) -> "StandingQuery":
        """Register a standing query, maintained under updates.

        Computes the initial answer while holding the engine lock, so
        registration is atomic with respect to updates: every update
        after this call is classified against the returned query, and
        none before it is missed.  Identical registrations share one
        :class:`~repro.live.StandingQuery`.  ``anytime=True`` maintains a
        monotone ``[lower, upper]`` impact bracket through the resumable
        stream path instead of an exact answer.
        """
        from ..live.session import LiveSession  # local import: engine <-> live

        with self._lock:
            if self._live is None:
                self._live = LiveSession(self)
            return self._live._subscribe_locked(focal, k, method, anytime, dict(options))

    def update_affects(
        self,
        focal: np.ndarray | Sequence[float],
        k: int,
        pairs: "Sequence[tuple[SkybandDelta, bool]]",
        *,
        pruned: bool | None = None,
    ) -> bool:
        """Rules-1–4 verdict: could any update in ``pairs`` change ``(focal, k)``?

        ``pairs`` is the ``(delta, inserted)`` evidence of an applied
        batch (:attr:`~repro.live.AppliedBatch.pairs`).  ``False`` is a
        proof that the answer — and any paused-stream bracket — is
        unchanged; ``True`` is conservative.  ``pruned`` defaults to
        whether this engine would have served the query from its
        k-skyband slice (the cache entries' own flag).
        """
        focal_array = np.asarray(focal, dtype=float)
        with self._lock:
            if pruned is None:
                pruned = self._prune and int(k) <= self.k_max
            return any(
                self._is_affected(focal_array, int(k), bool(pruned), delta, inserted)
                for delta, inserted in pairs
            )

    def _notify_live(self, pairs: "tuple[tuple[SkybandDelta, bool], ...]") -> None:
        """Fan an applied batch out to the standing queries, outside the lock.

        Called after the engine lock is released so repairs (which run
        full queries) never serialize unrelated engine traffic.
        """
        live = self._live
        if live is not None and pairs:
            live._on_update(pairs)

    def _backing_view(self) -> _BackingView:
        """Row-store view (tombstones included) backing the shared R-tree."""
        values, ids = self._skyband.backing_arrays()
        return _BackingView(values, ids)

    def _finish_update_batch(
        self, pairs: "tuple[tuple[SkybandDelta, bool], ...]"
    ) -> None:
        """Refresh the snapshot once and reconcile both caches after a batch.

        The invalidation predicate is the union of the per-update rules
        1–4 verdicts; each delta carries its sequential point-in-time
        evidence (values, post-update counts, boundary crossers), so the
        union invalidates exactly what applying the updates one at a time
        would — the coalesced-equals-sequential property the live tier's
        differential suite enforces.
        """
        # Stamp the engine's monotone id allocator onto the snapshot: after a
        # delete of the max-id record the surviving ids alone would re-derive
        # a lower watermark, and a persisted snapshot restored from it could
        # resurrect the dead id.
        self._snapshot = self._skyband.snapshot(self._name, id_high_watermark=self._next_id)
        new_fingerprint = self._snapshot.fingerprint()
        self._update_seq += 1

        def damaged(entry) -> bool:
            return any(
                self._is_affected(entry.focal, entry.k, entry.pruned, delta, inserted)
                for delta, inserted in pairs
            )

        retained, dropped = self._result_cache.apply_update(new_fingerprint, damaged)
        self.stats.entries_invalidated += dropped
        self.stats.entries_retained += retained

        # Paused streams follow the same rules 1-4: an update that provably
        # cannot change an entry's answer cannot change its (pruned)
        # competitor input either, so the suspended computation stays exactly
        # the one a cold re-run would perform and the checkpoint is re-keyed;
        # affected checkpoints are closed and dropped.
        _, partials_dropped = self._partials.apply_update(new_fingerprint, damaged)
        self.stats.partials_invalidated += partials_dropped

        stale = [pkey for pkey, entry in self._prepared.items() if damaged(entry)]
        for pkey in stale:
            evicted = self._prepared.pop(pkey)
            self._drop_hyperplanes_if_unused(evicted)

    def _is_affected(
        self,
        focal: np.ndarray,
        k: int,
        pruned: bool,
        delta: SkybandDelta,
        inserted: bool,
    ) -> bool:
        """Could the updated record change the answer for ``(focal, k)``?

        Implements rules 1–4 from the module docstring.
        """
        record = delta.values
        if np.all(record <= focal):
            return False  # dominated by (or equal to) the focal record
        if dominates(record, focal):
            return True  # shifts the dominator count D
        if not pruned or delta.count < k:
            return True  # part of the entry's competitor input
        # Out-of-band competitor: check for k-skyband boundary crossers among
        # the records it dominates.  ``changed_counts`` are post-update, so a
        # crosser sits exactly at k (insert) or k - 1 (delete).
        threshold = k if inserted else k - 1
        crossing = delta.changed_counts == threshold
        if not np.any(crossing):
            return False
        positions = []
        for rid in delta.changed_ids[crossing]:
            if int(rid) not in self._skyband:
                # A boundary crosser that is no longer live — deleted later
                # in the same batch, so its side of the crossing cannot be
                # re-examined here.  Invalidate conservatively: never wrong,
                # at worst one spare recompute.
                return True
            positions.append(self._skyband.position_of(int(rid)))
        rows = self._skyband.values_at(np.asarray(positions, dtype=int))
        # A crosser matters only if it is itself a competitor of this focal.
        return bool(np.any(~np.all(rows <= focal[None, :], axis=1)))
