"""The Figure 9 case study: marketing an NBA centre across two seasons.

A manager wants to know which preferences (weights over points, rebounds and
assists) place the focal centre among the top-3 players, and how that changed
between the 2014-2015 and 2015-2016 seasons.  The paper's finding: in the
first season the player stands out for *scoring*, in the second for
*rebounding/defence* — so the marketing message should change accordingly.

Run with:  python examples/nba_case_study.py
"""

from __future__ import annotations

import numpy as np

from repro import kspr
from repro.analysis import market_impact
from repro.data import howard_case_study


def describe_season(season) -> None:
    result = kspr(season.dataset, season.focal, k=3)
    summary = market_impact(result, season.dataset.dimensionality, samples=6000, rng=5)

    print(f"Season {season.label}: focal line {dict(zip(season.attributes, season.focal))}")
    print(f"  top-3 regions: {len(result)}  |  impact probability: {summary.uniform_probability:.1%}")
    if summary.mean_preference is None:
        print("  the player never reaches the top-3 — no marketing angle this year.\n")
        return
    weights = dict(zip(season.attributes, summary.mean_preference))
    strongest = max(weights, key=weights.get)
    print(
        "  average preference of users who shortlist him: "
        + ", ".join(f"{name}={value:.2f}" for name, value in weights.items())
    )
    print(f"  => marketing angle for {season.label}: emphasise his {strongest}.\n")


def main() -> None:
    season_2014, season_2015 = howard_case_study(player_count=250)
    describe_season(season_2014)
    describe_season(season_2015)


if __name__ == "__main__":
    main()
