"""Compare the three kSPR algorithms (CTA, P-CTA, LP-CTA) on one workload.

Runs the same query with all three algorithms of the paper plus the k-skyband
baseline, verifies that they agree (Monte-Carlo), and prints the work each one
performs — the counters behind Figures 10(b), 11 and 20.

Run with:  python examples/compare_algorithms.py
"""

from __future__ import annotations

import time

from repro import kspr, verify_result
from repro.baselines import kskyband_cta
from repro.data import independent_dataset
from repro.experiments import select_focal
from repro.experiments.report import format_table

METHODS = ("cta", "pcta", "lpcta")


def main() -> None:
    dataset = independent_dataset(300, 3, seed=2017)
    focal = select_focal(dataset, policy="skyline-top", seed=1)
    k = 4

    rows = []
    reference_volume = None
    for method in METHODS:
        start = time.perf_counter()
        result = kspr(dataset, focal, k, method=method)
        elapsed = time.perf_counter() - start
        report = verify_result(result, dataset, focal, k, samples=1500, rng=3)
        volume = result.total_volume()
        reference_volume = reference_volume if reference_volume is not None else volume
        rows.append(
            [
                method.upper(),
                len(result),
                result.stats.processed_records,
                result.stats.celltree_nodes,
                result.stats.lp.total_calls,
                f"{elapsed:.2f}",
                "yes" if report.is_consistent else "NO",
                f"{volume:.5f}",
            ]
        )

    start = time.perf_counter()
    skyband = kskyband_cta(dataset, focal, k)
    rows.append(
        [
            "K-SKYBAND",
            len(skyband),
            skyband.stats.processed_records,
            skyband.stats.celltree_nodes,
            skyband.stats.lp.total_calls,
            f"{time.perf_counter() - start:.2f}",
            "yes",
            f"{skyband.total_volume():.5f}",
        ]
    )

    columns = ["method", "regions", "processed", "nodes", "lp_calls", "seconds", "verified", "volume"]
    print(format_table(columns, rows))
    print(
        "\nAll methods answer the same query; the counters show why the paper's"
        " progressive and look-ahead variants dominate the basic approach."
    )


if __name__ == "__main__":
    main()
