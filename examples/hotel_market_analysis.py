"""Market-impact analysis for a hotel on a HOTEL-like dataset.

The scenario from the paper's introduction, applied to hotels: given a focal
hotel and a population of competitors described by star rating, (inverted)
price, room count and facilities, determine

* in which preference regions the hotel makes the top-k shortlist,
* the probability a random user shortlists it (uniform and price-sensitive
  user populations), and
* which attribute matters most to the users who would pick it — i.e. whom the
  hotel's advertising should target.

Run with:  python examples/hotel_market_analysis.py

Set ``REPRO_EXAMPLE_FAST=1`` (the CI smoke job does) for a smaller market.
"""

from __future__ import annotations

import os

import numpy as np

from repro import kspr
from repro.analysis import market_impact, weighted_impact_probability
from repro.data import hotel_surrogate
from repro.experiments import select_focal

ATTRIBUTES = ("stars", "price_value", "rooms", "facilities")

#: Market size: a d=4, k=5 query over 600 hotels takes a couple of minutes
#: of exact-geometry work — the full-fidelity default; the fast mode keeps
#: the same scenario at smoke-test cost.
CARDINALITY = 100 if os.environ.get("REPRO_EXAMPLE_FAST") else 600


def price_sensitive_users(rng: np.random.Generator, count: int) -> np.ndarray:
    """A user population that weighs price twice as much as anything else."""
    return rng.dirichlet(np.array([1.0, 4.0, 1.0, 1.0]), size=count)


def main() -> None:
    hotels = hotel_surrogate(cardinality=CARDINALITY, seed=20170514)
    focal = select_focal(hotels, policy="skyline-top", seed=3)
    print("Focal hotel attributes:", dict(zip(ATTRIBUTES, np.round(focal, 3))))

    result = kspr(hotels, focal, k=5)
    summary = market_impact(result, hotels.dimensionality, samples=6000, rng=11)
    price_aware = weighted_impact_probability(
        result, hotels.dimensionality, sampler=price_sensitive_users, samples=6000, rng=11
    )

    print(f"Top-5 preference regions: {len(result)}")
    print(f"Impact probability (uniform users):        {summary.uniform_probability:.1%}")
    print(f"Impact probability (price-sensitive users): {price_aware:.1%}")

    if summary.mean_preference is not None:
        profile = dict(zip(ATTRIBUTES, summary.mean_preference))
        strongest = max(profile, key=profile.get)
        print(
            "Average preference of potential customers: "
            + ", ".join(f"{name}={value:.2f}" for name, value in profile.items())
        )
        print(f"=> target advertising at users who care about: {strongest}")

    print("\nQuery statistics:")
    for key, value in result.summary().items():
        print(f"  {key}: {value:.4g}")


if __name__ == "__main__":
    main()
