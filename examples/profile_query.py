"""Profile a kSPR query end to end: span tree, phases, counters, exporters.

``Engine.profile()`` wraps one cache-bypassing query in a fresh tracer and
metrics registry and returns a :class:`repro.obs.QueryProfile`.  This
example renders the human report for an exact LP-backed query and an
adaptive sampling query, shows that the span tree is byte-identical across
repeated runs and worker counts, and exports the trace and metrics in the
three machine formats.

Run with:  PYTHONPATH=src python examples/profile_query.py

Set ``REPRO_EXAMPLE_FAST=1`` (the CI smoke job does) for a smaller instance.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.data import independent_dataset
from repro.engine import Engine
from repro.obs import MetricsRegistry, Tracer, use_registry, use_tracer
from repro.obs.export import registry_to_prometheus, trace_to_chrome, trace_to_jsonl

FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))

CARDINALITY = 300 if FAST else 800
APPROX_CARDINALITY = 800 if FAST else 4_000
DIMENSIONALITY = 3
K = 4
SEED = 31


def rule(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    dataset = independent_dataset(CARDINALITY, DIMENSIONALITY, seed=SEED)
    focal = np.array([0.85, 0.80, 0.90])[:DIMENSIONALITY]
    engine = Engine(dataset, method="lpcta", k_max=K + 2)

    rule("1. Engine.profile(): the human report")
    profile = engine.profile(focal, K)
    print(profile.render())

    rule("2. Determinism: same plan across repeats and worker counts")
    serial = engine.profile(focal, K).structure()
    again = engine.profile(focal, K).structure()
    sharded = engine.profile(focal, K, workers=4).structure()
    print(serial)
    print(f"\nrepeat identical:       {serial == again}")
    print(f"workers=1 == workers=4: {serial == sharded}")

    rule("3. Tracing a whole serving session")
    tracer = Tracer()
    registry = MetricsRegistry()
    with use_tracer(tracer), use_registry(registry):
        engine.query(focal, K)          # cold
        engine.query(focal, K)          # result-cache hit
    print(tracer.structure())

    rule("4. Exporters: JSON-lines, Prometheus, chrome://tracing")
    jsonl = trace_to_jsonl(tracer)
    print("trace JSONL, first record:")
    print(f"  {jsonl.splitlines()[0][:100]}...")
    prometheus = registry_to_prometheus(registry)
    print("\nPrometheus exposition, first lines:")
    for line in prometheus.splitlines()[:6]:
        print(f"  {line}")
    chrome = trace_to_chrome(tracer)
    print(f"\nchrome://tracing payload: {len(chrome['traceEvents'])} events "
          f"({len(json.dumps(chrome))} bytes) — load via chrome://tracing")

    rule("5. Engine lifetime metrics (canonical names)")
    metrics = engine.metrics()
    for name in sorted(metrics):
        if name.startswith(("engine.queries", "engine.result_cache", "engine.prepared")):
            print(f"  {name:40s} {metrics[name]}")

    rule("6. Profiling an adaptive sampling query")
    approx_dataset = independent_dataset(APPROX_CARDINALITY, DIMENSIONALITY, seed=SEED + 1)
    # A competitive focal — a lightly discounted copy of a strong record —
    # so the adaptive sampler has a non-trivial impact to pin down.
    best_row = int(approx_dataset.values.sum(axis=1).argmax())
    approx_focal = approx_dataset.values[best_row] * 0.98
    approx_engine = Engine(approx_dataset, method="cta", k_max=K + 2)
    approx_profile = approx_engine.profile(
        approx_focal, K, approx={"epsilon": 0.02, "delta": 0.05, "seed": 9, "adaptive": True}
    )
    print(approx_profile.render())


if __name__ == "__main__":
    main()
