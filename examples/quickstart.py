"""Quickstart: the paper's restaurant example (Figure 1).

Kyma's owner wants to know for which customer preferences her restaurant is
among the top-3 recommendations.  The example runs the kSPR query, prints the
preference regions (in both the transformed and the original weight space) and
the resulting market-impact probability.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Dataset, kspr
from repro.geometry.transform import transformed_to_original

RESTAURANTS = {
    "L'Entrecote": [3.0, 8.0, 8.0],
    "Beirut Grill": [9.0, 4.0, 4.0],
    "El Coyote": [8.0, 3.0, 4.0],
    "La Braceria": [4.0, 3.0, 6.0],
}
KYMA = np.array([5.0, 5.0, 7.0])
ATTRIBUTES = ("value", "service", "ambiance")


def main() -> None:
    dataset = Dataset(list(RESTAURANTS.values()), name="restaurants")
    result = kspr(dataset, KYMA, k=3)

    print(f"Kyma is in the top-3 within {len(result)} region(s) of the preference space.")
    print(f"Market impact (uniform preferences): {result.impact_probability():.1%}\n")

    for index, region in enumerate(result, start=1):
        centre = transformed_to_original(region.interior_point())
        weights = ", ".join(
            f"{name}={value:.2f}" for name, value in zip(ATTRIBUTES, centre)
        )
        print(f"Region {index}: worst rank {region.rank}, volume {region.volume:.4f}")
        print(f"  example preference inside the region: {weights}")

    # Sanity check: inside any region, Kyma really is in the top-3.
    example = transformed_to_original(result[0].interior_point())
    scores = {name: float(np.dot(values, example)) for name, values in RESTAURANTS.items()}
    scores["Kyma"] = float(np.dot(KYMA, example))
    ranking = sorted(scores, key=scores.get, reverse=True)
    print("\nRanking at the example preference:", " > ".join(ranking))
    print("Query statistics:", result.summary())


if __name__ == "__main__":
    main()
