"""Sampled vs exact impact probability, with confidence-interval bands.

The exact kSPR algorithms compute the *precise* impact probability — at a
cost that grows steeply with the dataset.  The sampling mode
(``kspr(method="sample")`` / :func:`repro.approx.sample_kspr`) estimates the
same number in near-linear time with a provable confidence interval.  This
example runs both on the same queries and renders the sampled CI bands
around the exact value as it shrinks with more samples, then cross-validates
the sampler against the exact anytime stream.

Run with:  PYTHONPATH=src python examples/approx_vs_exact.py

Set ``REPRO_EXAMPLE_FAST=1`` (the CI smoke job does) for a smaller instance.
"""

from __future__ import annotations

import os

from repro import kspr
from repro.approx import cross_check_stream, required_samples, sample_kspr
from repro.data import independent_dataset

FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))

CARDINALITY = 400 if FAST else 2_000
DIMENSIONALITY = 3
K = 3
SEED = 42

#: Sample sizes for the shrinking-band table.
LADDER = [200, 800, 3_200] if FAST else [200, 800, 3_200, 12_800]

BAND_WIDTH = 60  # characters across the [0, 1] probability axis


def band(lower: float, upper: float, exact: float) -> str:
    """Render one ASCII confidence band with the exact value marked ``|``."""
    cells = [" "] * BAND_WIDTH
    lo = min(int(lower * (BAND_WIDTH - 1)), BAND_WIDTH - 1)
    hi = min(int(upper * (BAND_WIDTH - 1)), BAND_WIDTH - 1)
    for index in range(lo, hi + 1):
        cells[index] = "="
    cells[min(int(exact * (BAND_WIDTH - 1)), BAND_WIDTH - 1)] = "|"
    return "".join(cells)


def main() -> None:
    dataset = independent_dataset(CARDINALITY, DIMENSIONALITY, seed=SEED)
    best_row = int(dataset.values.sum(axis=1).argmax())
    focal = dataset.values[best_row] * 0.97

    exact_result = kspr(dataset, focal, K)
    exact = exact_result.impact_probability()
    print(
        f"Exact impact over n={CARDINALITY}, d={DIMENSIONALITY}, k={K}: "
        f"{exact:.4f} ({len(exact_result)} regions, "
        f"{exact_result.stats.response_seconds:.2f}s)\n"
    )

    print(f"{'samples':>8}  {'estimate':>8}  {'95% CI':>18}  band (| = exact)")
    for samples in LADDER:
        approx = sample_kspr(dataset, focal, K, samples=samples, seed=SEED)
        lower, upper = approx.confidence_interval()
        print(
            f"{samples:>8}  {approx.estimate:>8.4f}  "
            f"[{lower:.4f}, {upper:.4f}]  {band(lower, upper, exact)}"
        )

    # The ``(epsilon, delta)`` contract: how many samples buy a +-0.02 answer?
    epsilon, delta = 0.02, 0.05
    print(
        f"\nContract (epsilon={epsilon}, delta={delta}): "
        f"{required_samples(epsilon, delta)} samples guarantee half-width "
        f"<= {epsilon} at {1 - delta:.0%} confidence (Hoeffding)."
    )
    adaptive = sample_kspr(
        dataset, focal, K, epsilon=epsilon, delta=delta, adaptive=True, seed=SEED
    )
    ratio = required_samples(epsilon, delta) / adaptive.samples
    comparison = (
        f"{ratio:.1f}x fewer than the worst-case plan"
        if ratio >= 1.0
        else "more than the worst-case plan — the impact sits near 0.5, "
        "where the binomial variance peaks; adaptive stopping pays off on "
        "skewed impacts"
    )
    print(
        f"Adaptive mode reached half-width {adaptive.half_width():.4f} with "
        f"{adaptive.samples} samples ({adaptive.looks} looks): {comparison}."
    )

    # Differential audit: the sampled interval must be consistent with the
    # exact anytime brackets (probability >= 1 - delta).
    report = cross_check_stream(
        dataset, focal, K, epsilon=epsilon, delta=delta, seed=SEED
    )
    verdict = "agrees" if report.agrees else "DISAGREES"
    print(
        f"\nStream cross-check: sampled CI {report.interval} vs "
        f"{len(report.brackets)} exact brackets -> {verdict}."
    )
    assert report.agrees, "sampler disagrees with the exact stream brackets"


if __name__ == "__main__":
    main()
